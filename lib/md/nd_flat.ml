(* The limb-generic flat kernel plane: allocation-free multiple double
   arithmetic computed directly on staggered limb planes, for any limb
   count m >= 2, behind one first-class dispatch record.

   The generic kernel path executes every operation through a [Scalar.S]
   record, boxing one multiple double value per addition and
   multiplication; at paper-scale dimensions the simulator's hot loops
   are then dominated by GC pressure rather than arithmetic.  The
   engines here keep every intermediate in an unboxed local float or in
   a small preallocated [float array] of a per-block {!ctx}, so the
   per-element loop bodies perform (almost) no allocation at all.

   Plane storage is a [Bigarray.Array1] of float64 per limb ({!fa}):
   flat 8-byte words outside the OCaml heap, read and written through
   [unsafe_get]/[unsafe_set] in the kernel loops (no bounds checks, no
   GC card marking on store), exactly the staggered device layout of
   the paper.  Setting MDLS_FLAT_BOUNDS=1 in the environment turns every
   plane access back into a checked one — the debug path for chasing
   indexing bugs in new kernels.

   Bit-identity is the contract that makes the flat plane safe to
   dispatch on a pure capability check: each engine replays the exact
   floating point operation sequence of the boxed module it mirrors, so
   results agree limb for limb.

   - m = 2 runs the unrolled QDlib sequences of [Double_double]
     (two_sum / quick_two_sum ieee_add, fma-based two_prod).
   - m = 4 runs the QDlib sequences of [Quad_double] (merge by
     decreasing magnitude through a sliding window, three_sum towers).
   - m = 8 runs a specialized engine for octo double: the same
     [Expansion.Pre] sequences as the generic replay below, but
     monomorphic and straight-line — the 36 partial products of the
     truncated multiplication hand-unrolled, the 79-slot product buffer
     sorted by a float-specialized replica of the stdlib heapsort
     (identical permutation, hence identical bits) instead of a
     closure-dispatched polymorphic sort.
   - every other m >= 3 runs an allocation-free replay of
     [Expansion.Pre]: accurate addition as merge-by-magnitude plus a
     two-pass renormalization, truncated multiplication as the exact
     partial products of order < m plus one guard order, sorted by
     magnitude and distilled — the CAMPARY-style generated arithmetic.
     This is what keeps triple double (m = 3) and hexa double (m = 16)
     on flat execution without hand-written kernels.

   The m = 2 and m = 4 engines cannot be instances of the generic one:
   their boxed counterparts are the specialized QDlib algorithms, which
   produce (correct but) different last-limb bits than the expansion
   algorithms, and bit-identity with the registry path is what the
   dispatchers and the fault plane rely on.  The m = 8 engine IS an
   instance of the expansion algorithms — it exists purely for speed and
   is pinned to the replay engine by the bit-identity suites.  All are
   selected once, at plan resolution, never per kernel operation.

   Concurrency: a {!plan} is immutable and shared freely; a {!ctx} is
   mutable per-block scratch, so each [Sim.launch] block (or test loop)
   allocates its own with [make_ctx] and reuses it across elements. *)

(* ------------------------------------------------------------------ *)
(* Plane storage                                                       *)
(* ------------------------------------------------------------------ *)

type fa = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type planes = fa array

(* The bounds-checked debug path: one immutable global consulted by the
   access wrappers below, so the predictable branch costs nothing in the
   default (unchecked) configuration. *)
let bounds_checked =
  match Sys.getenv_opt "MDLS_FLAT_BOUNDS" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* [Bigarray.Array1.create] does not zero its storage; every plane
   allocation goes through here so staged operands start well defined. *)
let make_plane n : fa =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.0;
  a

let make_planes ~limbs n : planes = Array.init limbs (fun _ -> make_plane n)
let plane_dim (p : fa) = Bigarray.Array1.dim p

let[@inline] get (p : planes) pl i =
  if bounds_checked then Bigarray.Array1.get (Array.get p pl) i
  else Bigarray.Array1.unsafe_get (Array.unsafe_get p pl) i

let[@inline] set (p : planes) pl i v =
  if bounds_checked then Bigarray.Array1.set (Array.get p pl) i v
  else Bigarray.Array1.unsafe_set (Array.unsafe_get p pl) i v

(* ------------------------------------------------------------------ *)
(* Scratch and the dispatch record                                     *)
(* ------------------------------------------------------------------ *)

(* Per-block scratch.  One concrete record serves all engines: each
   allocates only the fields its algorithms touch (the rest stay empty),
   all float state lives in float arrays (unboxed storage), and the
   mutable ints replace the refs of the reference implementations. *)
type ctx = {
  acc : float array;  (* m: the running accumulator *)
  tmp : float array;  (* m: second operand / write-back scratch *)
  prod : float array; (* m: the last product of a fused mul_add *)
  nb : float array;   (* m: negated operand of a subtraction *)
  abuf : float array; (* addition merge buffer: 2m generic, 4 for qd *)
  pbuf : float array; (* generic partial-product buffer: m^2 + 2m - 1 *)
  rt : float array;   (* qd renormalization input scratch (clobbered) *)
  out : float array;  (* renormalization output, m *)
  uv : float array;   (* sliding window (qd) / running carry (generic) *)
  mutable mi : int;   (* merge cursor into the first operand *)
  mutable mj : int;   (* merge cursor into the second operand *)
  mutable mk : int;   (* next output slot of a merge or emission *)
}

(* The first-class kernel-ops record.  All operations read operands
   from / write results to staggered planes ([get p limb index]), with
   the running value in [ctx.acc]:

     clear    : acc := 0
     load     : acc := p[i]            store    : p[i] := acc
     add      : acc := acc + p[i]
     mul_set  : acc := a[ia] * b[ib]
     mul_add  : acc := acc + a[ia] * b[ib]
     sub_from : p[i] := p[i] - acc

   Argument order mirrors the generic kernel bodies ([K.add acc x],
   [K.sub x acc]) so ties in magnitude merges break identically. *)
type plan = {
  limbs : int;
  make_ctx : unit -> ctx;
  clear : ctx -> unit;
  load : ctx -> planes -> int -> unit;
  store : ctx -> planes -> int -> unit;
  add : ctx -> planes -> int -> unit;
  mul_set : ctx -> planes -> int -> planes -> int -> unit;
  mul_add : ctx -> planes -> int -> planes -> int -> unit;
  sub_from : ctx -> planes -> int -> unit;
}

let empty = [||]

(* ------------------------------------------------------------------ *)
(* The magnitude sort, monomorphized                                   *)
(* ------------------------------------------------------------------ *)

(* [sort_mag a] sorts in place by decreasing absolute value, producing
   the EXACT permutation of [Renorm.sort_by_magnitude] (stdlib
   [Array.sort] with [fun x y -> compare (Float.abs y) (Float.abs x)]).
   The permutation matters: elements of equal magnitude but different
   sign flow through the renormalization ladder in buffer order, and the
   boxed path fixed that order when it sorted.  This is a field-for-field
   replica of the stdlib ternary heapsort with the comparison inlined on
   floats (the [Bottom] exception becomes a negative return), so the hot
   mul path pays float compares instead of a closure dispatch and a
   polymorphic-compare C call per comparison — the single largest cost
   of the octo double product. *)
let sort_mag (a : float array) =
  (* Only the sign of [cmp x y = Float.compare (Float.abs y)
     (Float.abs x)] is ever consumed, through these two tests; NaN
     orders below everything and equal to itself, as both
     [Float.compare] and the polymorphic compare do on floats. *)
  let[@inline] lt x y =
    (* cmp x y < 0 *)
    let ax = Float.abs x and ay = Float.abs y in
    ay < ax || (ay <> ay && ax = ax)
  in
  let[@inline] gt x y =
    (* cmp x y > 0 *)
    let ax = Float.abs x and ay = Float.abs y in
    ay > ax || (ax <> ax && ay = ay)
  in
  (* Index of the largest of up to three sons of [i], or [-1 - i'] where
     [i'] is the sonless node (stdlib's [Bottom i'] exception). *)
  let maxson l i =
    let i31 = i + i + i + 1 in
    if i31 + 2 < l then begin
      let x =
        if lt (Array.unsafe_get a i31) (Array.unsafe_get a (i31 + 1)) then
          i31 + 1
        else i31
      in
      if lt (Array.unsafe_get a x) (Array.unsafe_get a (i31 + 2)) then i31 + 2
      else x
    end
    else if
      i31 + 1 < l && lt (Array.unsafe_get a i31) (Array.unsafe_get a (i31 + 1))
    then i31 + 1
    else if i31 < l then i31
    else -1 - i
  in
  let rec trickledown l i e =
    let j = maxson l i in
    if j >= 0 then
      if gt (Array.unsafe_get a j) e then begin
        Array.unsafe_set a i (Array.unsafe_get a j);
        trickledown l j e
      end
      else Array.unsafe_set a i e
    else (* Bottom *) Array.unsafe_set a (-1 - j) e
  in
  let rec bubbledown l i =
    let j = maxson l i in
    if j >= 0 then begin
      Array.unsafe_set a i (Array.unsafe_get a j);
      bubbledown l j
    end
    else -1 - j
  in
  let rec trickleup i e =
    let father = (i - 1) / 3 in
    if lt (Array.unsafe_get a father) e then begin
      Array.unsafe_set a i (Array.unsafe_get a father);
      if father > 0 then trickleup father e else Array.unsafe_set a 0 e
    end
    else Array.unsafe_set a i e
  in
  let l = Array.length a in
  for i = ((l + 1) / 3) - 1 downto 0 do
    trickledown l i (Array.unsafe_get a i)
  done;
  for i = l - 1 downto 2 do
    let e = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a 0);
    trickleup (bubbledown i 0) e
  done;
  if l > 1 then begin
    let e = Array.unsafe_get a 1 in
    Array.unsafe_set a 1 (Array.unsafe_get a 0);
    Array.unsafe_set a 0 e
  end

(* ------------------------------------------------------------------ *)
(* m = 2: the unrolled QDlib sequences of [Double_double]              *)
(* ------------------------------------------------------------------ *)

module Dd = struct
  let make_ctx () =
    {
      acc = Array.make 2 0.0;
      tmp = empty;
      prod = empty;
      nb = empty;
      abuf = empty;
      pbuf = empty;
      rt = empty;
      out = empty;
      uv = empty;
      mi = 0;
      mj = 0;
      mk = 0;
    }

  let[@inline] clear c =
    c.acc.(0) <- 0.0;
    c.acc.(1) <- 0.0

  let[@inline] load c (p : planes) i =
    c.acc.(0) <- get p 0 i;
    c.acc.(1) <- get p 1 i

  let[@inline] store c (p : planes) i =
    set p 0 i c.acc.(0);
    set p 1 i c.acc.(1)

  (* acc := acc + (bhi, blo): the accurate ieee_add of
     [Double_double.Pre.add], fully unrolled (two_sum / two_sum /
     quick_two_sum / quick_two_sum). *)
  let[@inline] add_parts c bhi blo =
    let ahi = c.acc.(0) and alo = c.acc.(1) in
    (* s, e = two_sum ahi bhi *)
    let s = ahi +. bhi in
    let bb = s -. ahi in
    let e = (ahi -. (s -. bb)) +. (bhi -. bb) in
    (* t1, t2 = two_sum alo blo *)
    let t1 = alo +. blo in
    let bb2 = t1 -. alo in
    let t2 = (alo -. (t1 -. bb2)) +. (blo -. bb2) in
    let e = e +. t1 in
    (* s, e = quick_two_sum s e *)
    let s' = s +. e in
    let e' = e -. (s' -. s) in
    let e' = e' +. t2 in
    (* hi, lo = quick_two_sum s' e' *)
    let hi = s' +. e' in
    let lo = e' -. (hi -. s') in
    c.acc.(0) <- hi;
    c.acc.(1) <- lo

  let[@inline] add c (p : planes) i = add_parts c (get p 0 i) (get p 1 i)

  (* acc := a[ia] * b[ib]: [Double_double.Pre.mul], unrolled (two_prod
     via fused multiply-add, cross terms in plain double,
     quick_two_sum). *)
  let[@inline] mul_set c (a : planes) ia (b : planes) ib =
    let ahi = get a 0 ia and alo = get a 1 ia in
    let bhi = get b 0 ib and blo = get b 1 ib in
    let p = ahi *. bhi in
    let e = Float.fma ahi bhi (-.p) in
    let e = e +. ((ahi *. blo) +. (alo *. bhi)) in
    let hi = p +. e in
    let lo = e -. (hi -. p) in
    c.acc.(0) <- hi;
    c.acc.(1) <- lo

  (* acc := acc + a[ia] * b[ib], the fused inner step of every
     dot-shaped kernel; exactly [K.add acc (K.mul a b)]. *)
  let[@inline] mul_add c (a : planes) ia (b : planes) ib =
    let ahi = get a 0 ia and alo = get a 1 ia in
    let bhi = get b 0 ib and blo = get b 1 ib in
    let p = ahi *. bhi in
    let e = Float.fma ahi bhi (-.p) in
    let e = e +. ((ahi *. blo) +. (alo *. bhi)) in
    let phi = p +. e in
    let plo = e -. (phi -. p) in
    add_parts c phi plo

  (* p[i] := p[i] - acc: [Double_double.Pre.sub], unrolled (two_diff
     based, not add-of-negation, to stay bit-identical). *)
  let[@inline] sub_from c (p : planes) i =
    let bhi = c.acc.(0) and blo = c.acc.(1) in
    let ahi = get p 0 i and alo = get p 1 i in
    let d = ahi -. bhi in
    let bb = d -. ahi in
    let e = (ahi -. (d -. bb)) -. (bhi +. bb) in
    let t1 = alo -. blo in
    let bb2 = t1 -. alo in
    let t2 = (alo -. (t1 -. bb2)) -. (blo +. bb2) in
    let e = e +. t1 in
    let s' = d +. e in
    let e' = e -. (s' -. d) in
    let e' = e' +. t2 in
    let hi = s' +. e' in
    let lo = e' -. (hi -. s') in
    set p 0 i hi;
    set p 1 i lo

  let plan =
    { limbs = 2; make_ctx; clear; load; store; add; mul_set; mul_add; sub_from }
end

(* ------------------------------------------------------------------ *)
(* m = 4: the QDlib sequences of [Quad_double]                         *)
(* ------------------------------------------------------------------ *)

module Qd = struct
  let make_ctx () =
    {
      acc = Array.make 4 0.0;
      tmp = Array.make 4 0.0;
      prod = Array.make 4 0.0;
      nb = Array.make 4 0.0;
      abuf = Array.make 4 0.0;
      pbuf = empty;
      rt = Array.make 5 0.0;
      out = Array.make 4 0.0;
      uv = Array.make 3 0.0;
      mi = 0;
      mj = 0;
      mk = 0;
    }

  let[@inline] clear4 (s : float array) =
    s.(0) <- 0.0;
    s.(1) <- 0.0;
    s.(2) <- 0.0;
    s.(3) <- 0.0

  let[@inline] load4 (s : float array) (p : planes) i =
    s.(0) <- get p 0 i;
    s.(1) <- get p 1 i;
    s.(2) <- get p 2 i;
    s.(3) <- get p 3 i

  let[@inline] store4 (s : float array) (p : planes) i =
    set p 0 i s.(0);
    set p 1 i s.(1);
    set p 2 i s.(2);
    set p 3 i s.(3)

  (* [renorm c n] compresses c.rt.(0 .. n-1) into c.out, performing
     exactly the operations of [Renorm.renormalize ~m:4] (single pass).
     c.rt is clobbered; c.out is zeroed first, as the reference does. *)
  let renorm c n =
    let t = c.rt and out = c.out in
    out.(0) <- 0.0;
    out.(1) <- 0.0;
    out.(2) <- 0.0;
    out.(3) <- 0.0;
    (* Backward two_sum ladder; the running carry is kept in t.(i)
       itself (identical values to the ref-carried original). *)
    for i = n - 2 downto 0 do
      let a = t.(i) and b = t.(i + 1) in
      let s = a +. b in
      let bb = s -. a in
      let e = (a -. (s -. bb)) +. (b -. bb) in
      t.(i) <- s;
      t.(i + 1) <- e
    done;
    (* Forward pass: commit each nonzero error as the next output limb. *)
    c.mi <- 1;
    c.mk <- 0;
    c.uv.(0) <- t.(0);
    while c.mi < n && c.mk < 4 do
      let a = c.uv.(0) and b = t.(c.mi) in
      let s = a +. b in
      let e = b -. (s -. a) in
      if e <> 0.0 then begin
        out.(c.mk) <- s;
        c.mk <- c.mk + 1;
        c.uv.(0) <- e
      end
      else c.uv.(0) <- s;
      c.mi <- c.mi + 1
    done;
    if c.mk < 4 then out.(c.mk) <- c.uv.(0)

  (* [merge_next c aa bb] pops the next limb of the merge-by-decreasing-
     magnitude of aa and bb (the [next] closure of [Quad_double.Pre.add],
     with the cursors kept in the ctx instead of captured refs). *)
  let[@inline] merge_next c (aa : float array) (bb : float array) =
    if c.mi >= 4 then begin
      let t = bb.(c.mj) in
      c.mj <- c.mj + 1;
      t
    end
    else if c.mj >= 4 || Float.abs aa.(c.mi) > Float.abs bb.(c.mj) then begin
      let t = aa.(c.mi) in
      c.mi <- c.mi + 1;
      t
    end
    else begin
      let t = bb.(c.mj) in
      c.mj <- c.mj + 1;
      t
    end

  (* [add4 c x y] sets x := x + y (both 4-limb arrays), the accurate
     ieee_add of [Quad_double.Pre.add]: merge the eight limbs by
     decreasing magnitude through a sliding two-term window, then
     renormalize. *)
  let add4 c (x : float array) (y : float array) =
    let aa = x and bb = y in
    let w = c.abuf in
    w.(0) <- 0.0;
    w.(1) <- 0.0;
    w.(2) <- 0.0;
    w.(3) <- 0.0;
    c.mi <- 0;
    c.mj <- 0;
    c.mk <- 0;
    let uv = c.uv in
    uv.(0) <- merge_next c aa bb;
    uv.(1) <- merge_next c aa bb;
    (* u, v := quick_two_sum u v *)
    (let a = uv.(0) and b = uv.(1) in
     let s = a +. b in
     let e = b -. (s -. a) in
     uv.(0) <- s;
     uv.(1) <- e);
    (try
       while c.mk < 4 do
         if c.mi >= 4 && c.mj >= 4 then begin
           w.(c.mk) <- uv.(0);
           if c.mk < 3 then begin
             c.mk <- c.mk + 1;
             w.(c.mk) <- uv.(1)
           end;
           raise Exit
         end;
         let t = merge_next c aa bb in
         (* s, u', v' = quick_three_accum u v t *)
         let u = uv.(0) and v = uv.(1) in
         let s1 = v +. t in
         let bb1 = s1 -. v in
         let v' = (v -. (s1 -. bb1)) +. (t -. bb1) in
         let s2 = u +. s1 in
         let bb2 = s2 -. u in
         let u' = (u -. (s2 -. bb2)) +. (s1 -. bb2) in
         let za = u' <> 0.0 and zb = v' <> 0.0 in
         let s, nu, nv =
           if za && zb then (s2, u', v')
           else if not zb then (0.0, s2, u')
           else (0.0, s2, v')
         in
         uv.(0) <- nu;
         uv.(1) <- nv;
         if s <> 0.0 then begin
           w.(c.mk) <- s;
           c.mk <- c.mk + 1
         end
       done;
       (* All four output slots filled: sweep the leftovers into the
          tail. *)
       uv.(2) <- 0.0;
       for k = c.mi to 3 do
         uv.(2) <- uv.(2) +. aa.(k)
       done;
       for k = c.mj to 3 do
         uv.(2) <- uv.(2) +. bb.(k)
       done;
       w.(3) <- w.(3) +. uv.(2) +. uv.(0) +. uv.(1)
     with Exit -> ());
    (* renorm4 w into x *)
    let rt = c.rt in
    rt.(0) <- w.(0);
    rt.(1) <- w.(1);
    rt.(2) <- w.(2);
    rt.(3) <- w.(3);
    renorm c 4;
    x.(0) <- c.out.(0);
    x.(1) <- c.out.(1);
    x.(2) <- c.out.(2);
    x.(3) <- c.out.(3)

  (* [sub4 c x y] sets x := x - y, as [Quad_double.Pre.sub] does: the
     accurate addition of the negation. *)
  let sub4 c (x : float array) (y : float array) =
    let nb = c.nb in
    nb.(0) <- -.y.(0);
    nb.(1) <- -.y.(1);
    nb.(2) <- -.y.(2);
    nb.(3) <- -.y.(3);
    add4 c x nb

  (* [mul4 c dst a ia b ib] sets dst := a[ia] * b[ib]: the accurate
     multiplication of [Quad_double.Pre.mul], all partial products of
     order < 4 with their two_prod errors, order-4 terms folded in plain
     double, then the final renormalization of the five-term result. *)
  let mul4 c (dst : float array) (a : planes) ia (b : planes) ib =
    let a0 = get a 0 ia
    and a1 = get a 1 ia
    and a2 = get a 2 ia
    and a3 = get a 3 ia in
    let b0 = get b 0 ib
    and b1 = get b 1 ib
    and b2 = get b 2 ib
    and b3 = get b 3 ib in
    (* p, q = two_prod for every partial product of order < 3. *)
    let p0 = a0 *. b0 in
    let q0 = Float.fma a0 b0 (-.p0) in
    let p1 = a0 *. b1 in
    let q1 = Float.fma a0 b1 (-.p1) in
    let p2 = a1 *. b0 in
    let q2 = Float.fma a1 b0 (-.p2) in
    let p3 = a0 *. b2 in
    let q3 = Float.fma a0 b2 (-.p3) in
    let p4 = a1 *. b1 in
    let q4 = Float.fma a1 b1 (-.p4) in
    let p5 = a2 *. b0 in
    let q5 = Float.fma a2 b0 (-.p5) in
    (* p1, p2, q0 = three_sum p1 p2 q0 *)
    let t1 = p1 +. p2 in
    let bb = t1 -. p1 in
    let t2 = (p1 -. (t1 -. bb)) +. (p2 -. bb) in
    let s0 = q0 +. t1 in
    let bb = s0 -. q0 in
    let t3 = (q0 -. (s0 -. bb)) +. (t1 -. bb) in
    let s1 = t2 +. t3 in
    let bb = s1 -. t2 in
    let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
    let p1 = s0 and p2 = s1 and q0 = s2 in
    (* p2, q1, q2 = three_sum p2 q1 q2 *)
    let t1 = p2 +. q1 in
    let bb = t1 -. p2 in
    let t2 = (p2 -. (t1 -. bb)) +. (q1 -. bb) in
    let s0 = q2 +. t1 in
    let bb = s0 -. q2 in
    let t3 = (q2 -. (s0 -. bb)) +. (t1 -. bb) in
    let s1 = t2 +. t3 in
    let bb = s1 -. t2 in
    let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
    let p2 = s0 and q1 = s1 and q2 = s2 in
    (* p3, p4, p5 = three_sum p3 p4 p5 *)
    let t1 = p3 +. p4 in
    let bb = t1 -. p3 in
    let t2 = (p3 -. (t1 -. bb)) +. (p4 -. bb) in
    let s0 = p5 +. t1 in
    let bb = s0 -. p5 in
    let t3 = (p5 -. (s0 -. bb)) +. (t1 -. bb) in
    let s1 = t2 +. t3 in
    let bb = s1 -. t2 in
    let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
    let p3 = s0 and p4 = s1 and p5 = s2 in
    (* (s0, s1, s2) = (p2, q1, q2) + (p3, p4, p5) *)
    let s0 = p2 +. p3 in
    let bb = s0 -. p2 in
    let t0 = (p2 -. (s0 -. bb)) +. (p3 -. bb) in
    let s1 = q1 +. p4 in
    let bb = s1 -. q1 in
    let t1 = (q1 -. (s1 -. bb)) +. (p4 -. bb) in
    let s2 = q2 +. p5 in
    let s1' = s1 +. t0 in
    let bb = s1' -. s1 in
    let t0' = (s1 -. (s1' -. bb)) +. (t0 -. bb) in
    let s1 = s1' and t0 = t0' in
    let s2 = s2 +. t0 +. t1 in
    (* O(eps^3) terms. *)
    let p6 = a0 *. b3 in
    let q6 = Float.fma a0 b3 (-.p6) in
    let p7 = a1 *. b2 in
    let q7 = Float.fma a1 b2 (-.p7) in
    let p8 = a2 *. b1 in
    let q8 = Float.fma a2 b1 (-.p8) in
    let p9 = a3 *. b0 in
    let q9 = Float.fma a3 b0 (-.p9) in
    (* Nine-two sum of q0, s1, q3, q4, q5, p6, p7, p8, p9. *)
    let u = q0 +. q3 in
    let bb = u -. q0 in
    let q3' = (q0 -. (u -. bb)) +. (q3 -. bb) in
    let q0 = u and q3 = q3' in
    let u = q4 +. q5 in
    let bb = u -. q4 in
    let q5' = (q4 -. (u -. bb)) +. (q5 -. bb) in
    let q4 = u and q5 = q5' in
    let u = p6 +. p7 in
    let bb = u -. p6 in
    let p7' = (p6 -. (u -. bb)) +. (p7 -. bb) in
    let p6 = u and p7 = p7' in
    let u = p8 +. p9 in
    let bb = u -. p8 in
    let p9' = (p8 -. (u -. bb)) +. (p9 -. bb) in
    let p8 = u and p9 = p9' in
    let t0'' = q0 +. q4 in
    let bb = t0'' -. q0 in
    let t1'' = (q0 -. (t0'' -. bb)) +. (q4 -. bb) in
    let t0 = t0'' and t1 = t1'' in
    let t1 = t1 +. q3 +. q5 in
    let r0 = p6 +. p8 in
    let bb = r0 -. p6 in
    let r1 = (p6 -. (r0 -. bb)) +. (p8 -. bb) in
    let r1 = r1 +. p7 +. p9 in
    let q3 = t0 +. r0 in
    let bb = q3 -. t0 in
    let q4 = (t0 -. (q3 -. bb)) +. (r0 -. bb) in
    let q4 = q4 +. t1 +. r1 in
    let t0 = q3 +. s1 in
    let bb = t0 -. q3 in
    let t1 = (q3 -. (t0 -. bb)) +. (s1 -. bb) in
    let t1 = t1 +. q4 in
    (* O(eps^4) terms. *)
    let t1 =
      t1 +. (a1 *. b3) +. (a2 *. b2) +. (a3 *. b1) +. q6 +. q7 +. q8 +. q9
      +. s2
    in
    let rt = c.rt in
    rt.(0) <- p0;
    rt.(1) <- p1;
    rt.(2) <- s0;
    rt.(3) <- t0;
    rt.(4) <- t1;
    renorm c 5;
    dst.(0) <- c.out.(0);
    dst.(1) <- c.out.(1);
    dst.(2) <- c.out.(2);
    dst.(3) <- c.out.(3)

  let clear c = clear4 c.acc
  let load c p i = load4 c.acc p i
  let store c p i = store4 c.acc p i

  (* acc := acc + p[i], exactly [K.add acc x]. *)
  let add c p i =
    load4 c.tmp p i;
    add4 c c.acc c.tmp

  let mul_set c a ia b ib = mul4 c c.acc a ia b ib

  (* acc := acc + a[ia] * b[ib], exactly [K.add acc (K.mul a b)]. *)
  let mul_add c a ia b ib =
    mul4 c c.prod a ia b ib;
    add4 c c.acc c.prod

  (* p[i] := p[i] - acc, exactly [K.sub x acc]. *)
  let sub_from c p i =
    load4 c.tmp p i;
    sub4 c c.tmp c.acc;
    store4 c.tmp p i

  let plan =
    { limbs = 4; make_ctx; clear; load; store; add; mul_set; mul_add; sub_from }
end

(* ------------------------------------------------------------------ *)
(* m = 8: the specialized octo double engine                           *)
(* ------------------------------------------------------------------ *)

(* Octo double is the precision where flat execution should pay off the
   most — the paper's cost-of-arithmetic-to-memory ratio peaks at 8
   limbs — yet the generic replay below left it at ~2x: both the boxed
   path and the replay shared the closure-dispatched polymorphic sort of
   the 79-slot product buffer, which dominates the multiplication.  This
   engine runs the SAME [Expansion.Pre] operation sequence (so the
   bit-identity suites pin it against [Octo_double]) with everything
   monomorphic: the 36 partial products hand-unrolled into straight-line
   fma code, the magnitude sort through {!sort_mag}, the merge and
   renormalization ladders over fixed-size scratch with unchecked
   accesses.  Only the data-dependent forward commit pass (QDlib's zero
   tests) remains a loop by nature. *)
module Od = struct
  (* m^2 + 2m - 1 at m = 8: 36 two_prod pairs + 7 guard products. *)
  let pcount8 = 79

  let make_ctx () =
    {
      acc = Array.make 8 0.0;
      tmp = Array.make 8 0.0;
      prod = Array.make 8 0.0;
      nb = Array.make 8 0.0;
      abuf = Array.make 16 0.0;
      pbuf = Array.make pcount8 0.0;
      rt = empty;
      out = Array.make 8 0.0;
      uv = Array.make 1 0.0;
      mi = 0;
      mj = 0;
      mk = 0;
    }

  let[@inline] clear c =
    let a = c.acc in
    Array.unsafe_set a 0 0.0;
    Array.unsafe_set a 1 0.0;
    Array.unsafe_set a 2 0.0;
    Array.unsafe_set a 3 0.0;
    Array.unsafe_set a 4 0.0;
    Array.unsafe_set a 5 0.0;
    Array.unsafe_set a 6 0.0;
    Array.unsafe_set a 7 0.0

  let[@inline] load8 (s : float array) (p : planes) i =
    Array.unsafe_set s 0 (get p 0 i);
    Array.unsafe_set s 1 (get p 1 i);
    Array.unsafe_set s 2 (get p 2 i);
    Array.unsafe_set s 3 (get p 3 i);
    Array.unsafe_set s 4 (get p 4 i);
    Array.unsafe_set s 5 (get p 5 i);
    Array.unsafe_set s 6 (get p 6 i);
    Array.unsafe_set s 7 (get p 7 i)

  let[@inline] store8 (s : float array) (p : planes) i =
    set p 0 i (Array.unsafe_get s 0);
    set p 1 i (Array.unsafe_get s 1);
    set p 2 i (Array.unsafe_get s 2);
    set p 3 i (Array.unsafe_get s 3);
    set p 4 i (Array.unsafe_get s 4);
    set p 5 i (Array.unsafe_get s 5);
    set p 6 i (Array.unsafe_get s 6);
    set p 7 i (Array.unsafe_get s 7)

  let load c p i = load8 c.acc p i
  let store c p i = store8 c.acc p i

  (* [renorm_into8 c buf n]: [Renorm.renormalize ~passes:2 ~m:8] over
     buf.(0 .. n-1) into c.out — the operation sequence of
     [Gen.renorm_into] at m = 8, monomorphic, with the running carry in
     the unboxed c.uv slot.  buf is clobbered. *)
  let renorm_into8 c (buf : float array) n =
    let uv = c.uv in
    for _pass = 1 to 2 do
      Array.unsafe_set uv 0 (Array.unsafe_get buf (n - 1));
      for i = n - 2 downto 0 do
        let a = Array.unsafe_get buf i and b = Array.unsafe_get uv 0 in
        let s = a +. b in
        let bb = s -. a in
        let e = (a -. (s -. bb)) +. (b -. bb) in
        Array.unsafe_set uv 0 s;
        Array.unsafe_set buf (i + 1) e
      done;
      Array.unsafe_set buf 0 (Array.unsafe_get uv 0)
    done;
    let out = c.out in
    Array.unsafe_set out 0 0.0;
    Array.unsafe_set out 1 0.0;
    Array.unsafe_set out 2 0.0;
    Array.unsafe_set out 3 0.0;
    Array.unsafe_set out 4 0.0;
    Array.unsafe_set out 5 0.0;
    Array.unsafe_set out 6 0.0;
    Array.unsafe_set out 7 0.0;
    c.mi <- 1;
    c.mk <- 0;
    Array.unsafe_set uv 0 (Array.unsafe_get buf 0);
    while c.mi < n && c.mk < 8 do
      let a = Array.unsafe_get uv 0 and b = Array.unsafe_get buf c.mi in
      let s = a +. b in
      let e = b -. (s -. a) in
      if e <> 0.0 then begin
        Array.unsafe_set out c.mk s;
        c.mk <- c.mk + 1;
        Array.unsafe_set uv 0 e
      end
      else Array.unsafe_set uv 0 s;
      c.mi <- c.mi + 1
    done;
    if c.mk < 8 then Array.unsafe_set out c.mk (Array.unsafe_get uv 0)

  let[@inline] blit_out8 c (dst : float array) =
    let o = c.out in
    Array.unsafe_set dst 0 (Array.unsafe_get o 0);
    Array.unsafe_set dst 1 (Array.unsafe_get o 1);
    Array.unsafe_set dst 2 (Array.unsafe_get o 2);
    Array.unsafe_set dst 3 (Array.unsafe_get o 3);
    Array.unsafe_set dst 4 (Array.unsafe_get o 4);
    Array.unsafe_set dst 5 (Array.unsafe_get o 5);
    Array.unsafe_set dst 6 (Array.unsafe_get o 6);
    Array.unsafe_set dst 7 (Array.unsafe_get o 7)

  (* [add_arrays8 c x y]: x := x + y (both 8-limb, normalized hence
     magnitude-sorted): [Renorm.merge_by_magnitude] into c.abuf followed
     by the two-pass renormalization — exactly [Expansion.Pre.add] at
     m = 8 (ties break on [>=], first operand wins, as in the boxed
     merge). *)
  let add_arrays8 c (x : float array) (y : float array) =
    let w = c.abuf in
    c.mi <- 0;
    c.mj <- 0;
    c.mk <- 0;
    while c.mi < 8 && c.mj < 8 do
      let a = Array.unsafe_get x c.mi and b = Array.unsafe_get y c.mj in
      if Float.abs a >= Float.abs b then begin
        Array.unsafe_set w c.mk a;
        c.mi <- c.mi + 1
      end
      else begin
        Array.unsafe_set w c.mk b;
        c.mj <- c.mj + 1
      end;
      c.mk <- c.mk + 1
    done;
    while c.mi < 8 do
      Array.unsafe_set w c.mk (Array.unsafe_get x c.mi);
      c.mi <- c.mi + 1;
      c.mk <- c.mk + 1
    done;
    while c.mj < 8 do
      Array.unsafe_set w c.mk (Array.unsafe_get y c.mj);
      c.mj <- c.mj + 1;
      c.mk <- c.mk + 1
    done;
    renorm_into8 c w 16;
    blit_out8 c x

  (* One exact partial product into slots k, k+1 of the buffer. *)
  let[@inline] pp (u : float array) k x y =
    let p = x *. y in
    Array.unsafe_set u k p;
    Array.unsafe_set u (k + 1) (Float.fma x y (-.p))

  (* [mul8 c dst a ia b ib]: dst := a[ia] * b[ib], exactly
     [Expansion.Pre.mul] at m = 8 — the partial products emitted by
     increasing order o = i + j (each split by fma two_prod), one guard
     order of plain products, sorted by decreasing magnitude and
     distilled in two passes.  The emission is fully unrolled with
     static buffer slots; the slot order is the boxed loop's. *)
  let mul8 c (dst : float array) (a : planes) ia (b : planes) ib =
    let a0 = get a 0 ia
    and a1 = get a 1 ia
    and a2 = get a 2 ia
    and a3 = get a 3 ia
    and a4 = get a 4 ia
    and a5 = get a 5 ia
    and a6 = get a 6 ia
    and a7 = get a 7 ia in
    let b0 = get b 0 ib
    and b1 = get b 1 ib
    and b2 = get b 2 ib
    and b3 = get b 3 ib
    and b4 = get b 4 ib
    and b5 = get b 5 ib
    and b6 = get b 6 ib
    and b7 = get b 7 ib in
    let u = c.pbuf in
    (* order 0 *)
    pp u 0 a0 b0;
    (* order 1 *)
    pp u 2 a0 b1;
    pp u 4 a1 b0;
    (* order 2 *)
    pp u 6 a0 b2;
    pp u 8 a1 b1;
    pp u 10 a2 b0;
    (* order 3 *)
    pp u 12 a0 b3;
    pp u 14 a1 b2;
    pp u 16 a2 b1;
    pp u 18 a3 b0;
    (* order 4 *)
    pp u 20 a0 b4;
    pp u 22 a1 b3;
    pp u 24 a2 b2;
    pp u 26 a3 b1;
    pp u 28 a4 b0;
    (* order 5 *)
    pp u 30 a0 b5;
    pp u 32 a1 b4;
    pp u 34 a2 b3;
    pp u 36 a3 b2;
    pp u 38 a4 b1;
    pp u 40 a5 b0;
    (* order 6 *)
    pp u 42 a0 b6;
    pp u 44 a1 b5;
    pp u 46 a2 b4;
    pp u 48 a3 b3;
    pp u 50 a4 b2;
    pp u 52 a5 b1;
    pp u 54 a6 b0;
    (* order 7 *)
    pp u 56 a0 b7;
    pp u 58 a1 b6;
    pp u 60 a2 b5;
    pp u 62 a3 b4;
    pp u 64 a4 b3;
    pp u 66 a5 b2;
    pp u 68 a6 b1;
    pp u 70 a7 b0;
    (* the guard order, plain products at i + j = 8 *)
    Array.unsafe_set u 72 (a1 *. b7);
    Array.unsafe_set u 73 (a2 *. b6);
    Array.unsafe_set u 74 (a3 *. b5);
    Array.unsafe_set u 75 (a4 *. b4);
    Array.unsafe_set u 76 (a5 *. b3);
    Array.unsafe_set u 77 (a6 *. b2);
    Array.unsafe_set u 78 (a7 *. b1);
    sort_mag u;
    renorm_into8 c u pcount8;
    blit_out8 c dst

  (* acc := acc + p[i], exactly [K.add acc x]. *)
  let add c (p : planes) i =
    load8 c.tmp p i;
    add_arrays8 c c.acc c.tmp

  let mul_set c a ia b ib = mul8 c c.acc a ia b ib

  (* acc := acc + a[ia] * b[ib], exactly [K.add acc (K.mul a b)]. *)
  let mul_add c a ia b ib =
    mul8 c c.prod a ia b ib;
    add_arrays8 c c.acc c.prod

  (* p[i] := p[i] - acc, exactly [K.sub x acc] = add x (neg acc). *)
  let sub_from c (p : planes) i =
    let t = c.tmp and nb = c.nb and a = c.acc in
    load8 t p i;
    Array.unsafe_set nb 0 (-.Array.unsafe_get a 0);
    Array.unsafe_set nb 1 (-.Array.unsafe_get a 1);
    Array.unsafe_set nb 2 (-.Array.unsafe_get a 2);
    Array.unsafe_set nb 3 (-.Array.unsafe_get a 3);
    Array.unsafe_set nb 4 (-.Array.unsafe_get a 4);
    Array.unsafe_set nb 5 (-.Array.unsafe_get a 5);
    Array.unsafe_set nb 6 (-.Array.unsafe_get a 6);
    Array.unsafe_set nb 7 (-.Array.unsafe_get a 7);
    add_arrays8 c c.tmp c.nb;
    store8 c.tmp p i

  let plan =
    { limbs = 8; make_ctx; clear; load; store; add; mul_set; mul_add; sub_from }
end

(* ------------------------------------------------------------------ *)
(* Any other m >= 3: allocation-free replay of [Expansion.Pre]         *)
(* ------------------------------------------------------------------ *)

module Gen = struct
  (* Size of the truncated-product buffer of [Expansion.Pre.mul]: two
     doubles per exact partial product of order < m, one per guard term
     of order m. *)
  let pcount m = (m * m) + (2 * m) - 1

  let make_ctx m () =
    {
      acc = Array.make m 0.0;
      tmp = Array.make m 0.0;
      prod = Array.make m 0.0;
      nb = Array.make m 0.0;
      abuf = Array.make (2 * m) 0.0;
      pbuf = Array.make (pcount m) 0.0;
      rt = empty;
      out = Array.make m 0.0;
      uv = Array.make 1 0.0;
      mi = 0;
      mj = 0;
      mk = 0;
    }

  (* [renorm_into c buf n m passes] is [Renorm.renormalize ~passes ~m]
     over buf.(0 .. n-1), writing c.out; buf is clobbered.  Same
     backward two_sum ladder(s), same forward quick_two_sum commit with
     the same zero tests, with the running carry in c.uv.(0) instead of
     a ref. *)
  let renorm_into c (buf : float array) n m passes =
    for _ = 1 to passes do
      c.uv.(0) <- buf.(n - 1);
      for i = n - 2 downto 0 do
        let a = buf.(i) and b = c.uv.(0) in
        let s = a +. b in
        let bb = s -. a in
        let e = (a -. (s -. bb)) +. (b -. bb) in
        c.uv.(0) <- s;
        buf.(i + 1) <- e
      done;
      buf.(0) <- c.uv.(0)
    done;
    for k = 0 to m - 1 do
      c.out.(k) <- 0.0
    done;
    c.mi <- 1;
    c.mk <- 0;
    c.uv.(0) <- buf.(0);
    while c.mi < n && c.mk < m do
      let a = c.uv.(0) and b = buf.(c.mi) in
      let s = a +. b in
      let e = b -. (s -. a) in
      if e <> 0.0 then begin
        c.out.(c.mk) <- s;
        c.mk <- c.mk + 1;
        c.uv.(0) <- e
      end
      else c.uv.(0) <- s;
      c.mi <- c.mi + 1
    done;
    if c.mk < m then c.out.(c.mk) <- c.uv.(0)

  (* [add_arrays c m x y] sets x := x + y (both m-limb, normalized hence
     magnitude-sorted): [Renorm.merge_by_magnitude] into c.abuf followed
     by the two-pass renormalization — exactly [Expansion.Pre.add]. *)
  let add_arrays c m (x : float array) (y : float array) =
    let w = c.abuf in
    c.mi <- 0;
    c.mj <- 0;
    c.mk <- 0;
    while c.mi < m && c.mj < m do
      if Float.abs x.(c.mi) >= Float.abs y.(c.mj) then begin
        w.(c.mk) <- x.(c.mi);
        c.mi <- c.mi + 1
      end
      else begin
        w.(c.mk) <- y.(c.mj);
        c.mj <- c.mj + 1
      end;
      c.mk <- c.mk + 1
    done;
    while c.mi < m do
      w.(c.mk) <- x.(c.mi);
      c.mi <- c.mi + 1;
      c.mk <- c.mk + 1
    done;
    while c.mj < m do
      w.(c.mk) <- y.(c.mj);
      c.mj <- c.mj + 1;
      c.mk <- c.mk + 1
    done;
    renorm_into c w (2 * m) m 2;
    Array.blit c.out 0 x 0 m

  (* [mul_into c m dst a ia b ib]: dst := a[ia] * b[ib], exactly
     [Expansion.Pre.mul] — partial products emitted by increasing order
     (each order-< m product split by fma two_prod), one guard order of
     plain products, sorted by decreasing magnitude, distilled in two
     passes.  {!sort_mag} is called on the exact-sized buffer so ties
     land in the same order as the boxed path. *)
  let mul_into c m (dst : float array) (a : planes) ia (b : planes) ib =
    let buf = c.pbuf in
    c.mk <- 0;
    for o = 0 to m - 1 do
      for i = 0 to o do
        let j = o - i in
        let x = get a i ia and y = get b j ib in
        let p = x *. y in
        let e = Float.fma x y (-.p) in
        buf.(c.mk) <- p;
        c.mk <- c.mk + 1;
        buf.(c.mk) <- e;
        c.mk <- c.mk + 1
      done
    done;
    for i = 1 to m - 1 do
      buf.(c.mk) <- get a i ia *. get b (m - i) ib;
      c.mk <- c.mk + 1
    done;
    sort_mag buf;
    renorm_into c buf (pcount m) m 2;
    Array.blit c.out 0 dst 0 m

  let clear c =
    let a = c.acc in
    for k = 0 to Array.length a - 1 do
      a.(k) <- 0.0
    done

  let load m c (p : planes) i =
    for pl = 0 to m - 1 do
      c.acc.(pl) <- get p pl i
    done

  let store m c (p : planes) i =
    for pl = 0 to m - 1 do
      set p pl i c.acc.(pl)
    done

  (* acc := acc + p[i], exactly [K.add acc x]. *)
  let add m c (p : planes) i =
    for pl = 0 to m - 1 do
      c.tmp.(pl) <- get p pl i
    done;
    add_arrays c m c.acc c.tmp

  let mul_set m c a ia b ib = mul_into c m c.acc a ia b ib

  (* acc := acc + a[ia] * b[ib], exactly [K.add acc (K.mul a b)]. *)
  let mul_add m c a ia b ib =
    mul_into c m c.prod a ia b ib;
    add_arrays c m c.acc c.prod

  (* p[i] := p[i] - acc, exactly [K.sub x acc] = add x (neg acc). *)
  let sub_from m c (p : planes) i =
    for pl = 0 to m - 1 do
      c.tmp.(pl) <- get p pl i;
      c.nb.(pl) <- -.c.acc.(pl)
    done;
    add_arrays c m c.tmp c.nb;
    for pl = 0 to m - 1 do
      set p pl i c.tmp.(pl)
    done

  let plan m =
    {
      limbs = m;
      make_ctx = make_ctx m;
      clear;
      load = load m;
      store = store m;
      add = add m;
      mul_set = mul_set m;
      mul_add = mul_add m;
      sub_from = sub_from m;
    }
end

(* ------------------------------------------------------------------ *)
(* The single dispatch point                                           *)
(* ------------------------------------------------------------------ *)

(* Plain double (m = 1) is left out: its boxed path does one machine
   operation per kernel operation, so limb staging could only lose. *)
let supported m = m >= 2

let plan ~limbs =
  if limbs = 2 then Some Dd.plan
  else if limbs = 4 then Some Qd.plan
  else if limbs = 8 then Some Od.plan
  else if supported limbs then Some (Gen.plan limbs)
  else None
