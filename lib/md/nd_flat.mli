(** Limb-generic flat kernel plane.

    Allocation-free multiple double arithmetic computed directly on
    staggered limb planes for any limb count [m >= 2], behind one
    first-class dispatch record.  A plane is a [Bigarray.Array1] of
    float64 ({!fa}): flat 8-byte words outside the OCaml heap, accessed
    without bounds checks in the kernel loops (set [MDLS_FLAT_BOUNDS=1]
    in the environment to turn every access back into a checked one).

    Every operation replays the exact floating point sequence of the
    boxed module registered for that limb count, so results are
    bit-identical limb for limb: [m = 2] runs the unrolled QDlib
    double-double sequences, [m = 4] the QDlib quad-double sequences,
    [m = 8] a specialized straight-line octo double engine (the
    [Expansion.Pre] sequences hand-unrolled, with a float-monomorphic
    replica of the stdlib magnitude sort), and every other [m >= 3] an
    allocation-free replay of [Expansion.Pre] (merge + renormalize
    addition, truncated partial-product multiplication) — which is what
    keeps triple double and hexa double on flat execution without
    hand-written kernels. *)

type fa = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One limb plane: a flat array of float64 words. *)

type planes = fa array
(** A staged operand: one plane per limb, most significant first. *)

val bounds_checked : bool
(** True when MDLS_FLAT_BOUNDS requested the checked debug path; every
    {!get}/{!set} (and hence every engine plane access) then bounds
    checks. *)

val make_plane : int -> fa
(** [make_plane n] allocates a zero-filled plane of [n] words
    ([Bigarray.Array1.create] alone does not zero its storage). *)

val make_planes : limbs:int -> int -> planes
(** [make_planes ~limbs n] allocates [limbs] zero-filled planes of [n]
    words each. *)

val plane_dim : fa -> int
(** Number of words in a plane. *)

val get : planes -> int -> int -> float
(** [get p limb i] reads word [i] of plane [limb]; unchecked unless
    {!bounds_checked}. *)

val set : planes -> int -> int -> float -> unit
(** [set p limb i v] writes word [i] of plane [limb]; unchecked unless
    {!bounds_checked}. *)

val sort_mag : float array -> unit
(** Sorts in place by decreasing absolute value, producing the exact
    permutation of [Renorm.sort_by_magnitude] (a float-monomorphic
    replica of the stdlib heapsort) — exposed for the bit-identity
    tests. *)

type ctx
(** Mutable per-block scratch.  Allocate one per launch block (or test
    loop) with {!field:plan.make_ctx} and reuse it across elements; a
    [ctx] must not be shared between domains. *)

(** The kernel-ops record resolved once per limb count.  All operations
    read operands from / write results to staggered planes, with the
    running value held inside the [ctx]:

    - [clear c] — acc := 0
    - [load c p i] — acc := p\[i\]
    - [store c p i] — p\[i\] := acc
    - [add c p i] — acc := acc + p\[i\] (boxed [K.add acc x])
    - [mul_set c a ia b ib] — acc := a\[ia\] * b\[ib\]
    - [mul_add c a ia b ib] — acc := acc + a\[ia\] * b\[ib\]
      (boxed [K.add acc (K.mul a b)])
    - [sub_from c p i] — p\[i\] := p\[i\] - acc (boxed [K.sub x acc]) *)
type plan = {
  limbs : int;
  make_ctx : unit -> ctx;
  clear : ctx -> unit;
  load : ctx -> planes -> int -> unit;
  store : ctx -> planes -> int -> unit;
  add : ctx -> planes -> int -> unit;
  mul_set : ctx -> planes -> int -> planes -> int -> unit;
  mul_add : ctx -> planes -> int -> planes -> int -> unit;
  sub_from : ctx -> planes -> int -> unit;
}

val supported : int -> bool
(** [supported m] is [true] iff a flat plan exists for limb count [m],
    i.e. [m >= 2].  Plain double ([m = 1]) is excluded: its boxed path
    is one machine operation per kernel op, so limb staging could only
    lose. *)

val plan : limbs:int -> plan option
(** [plan ~limbs] resolves the flat kernel-ops record for a limb count.
    [None] exactly when [not (supported limbs)].  This is the single
    dispatch point: precision selection happens here, once, and
    everything downstream is written against the returned record —
    [m = 8] resolves to the specialized octo double engine, other
    non-QDlib widths to the generic expansion replay. *)
