(** Limb-generic flat kernel plane.

    Allocation-free multiple double arithmetic computed directly on
    staggered limb planes ([planes.(limb).(index)] : [float array array])
    for any limb count [m >= 2], behind one first-class dispatch record.

    Every operation replays the exact floating point sequence of the
    boxed module registered for that limb count, so results are
    bit-identical limb for limb: [m = 2] runs the unrolled QDlib
    double-double sequences, [m = 4] the QDlib quad-double sequences,
    and every other [m >= 3] an allocation-free replay of
    [Expansion.Pre] (merge + renormalize addition, truncated
    partial-product multiplication) — which is what gives octo double,
    triple double and hexa double flat execution without hand-written
    kernels. *)

type ctx
(** Mutable per-block scratch.  Allocate one per launch block (or test
    loop) with {!field:plan.make_ctx} and reuse it across elements; a
    [ctx] must not be shared between domains. *)

(** The kernel-ops record resolved once per limb count.  All operations
    read operands from / write results to staggered planes, with the
    running value held inside the [ctx]:

    - [clear c] — acc := 0
    - [load c p i] — acc := p\[i\]
    - [store c p i] — p\[i\] := acc
    - [add c p i] — acc := acc + p\[i\] (boxed [K.add acc x])
    - [mul_set c a ia b ib] — acc := a\[ia\] * b\[ib\]
    - [mul_add c a ia b ib] — acc := acc + a\[ia\] * b\[ib\]
      (boxed [K.add acc (K.mul a b)])
    - [sub_from c p i] — p\[i\] := p\[i\] - acc (boxed [K.sub x acc]) *)
type plan = {
  limbs : int;
  make_ctx : unit -> ctx;
  clear : ctx -> unit;
  load : ctx -> float array array -> int -> unit;
  store : ctx -> float array array -> int -> unit;
  add : ctx -> float array array -> int -> unit;
  mul_set : ctx -> float array array -> int -> float array array -> int -> unit;
  mul_add : ctx -> float array array -> int -> float array array -> int -> unit;
  sub_from : ctx -> float array array -> int -> unit;
}

val supported : int -> bool
(** [supported m] is [true] iff a flat plan exists for limb count [m],
    i.e. [m >= 2].  Plain double ([m = 1]) is excluded: its boxed path
    is one machine operation per kernel op, so limb staging could only
    lose. *)

val plan : limbs:int -> plan option
(** [plan ~limbs] resolves the flat kernel-ops record for a limb count.
    [None] exactly when [not (supported limbs)].  This is the single
    dispatch point: precision selection happens here, once, and
    everything downstream is written against the returned record. *)
