(* Allocation-free double double arithmetic on staggered limb planes.

   The generic path executes every kernel operation through a [Scalar.S]
   record, boxing a {hi; lo} pair per addition and multiplication, so at
   paper-scale dimensions the simulator's hot loops are dominated by GC
   pressure rather than arithmetic.  The functions here are the same
   accurate QDlib algorithms as [Double_double] — unrolled to the exact
   same floating point operation sequence, so the results are limb for
   limb identical — but they read their operands straight out of the
   staggered [float array] planes and keep every intermediate in an
   unboxed local float.

   The only mutable state is a two-field all-float record (stored with
   unboxed fields by the OCaml runtime): one accumulator is allocated per
   kernel block and reused across the elements of the block, so the
   per-element loop body performs no allocation at all.  Every small
   helper is [@inline]: once inlined into the kernel loop the float
   arguments never cross a function boundary and stay in registers. *)

(* The running accumulator: an all-float record, so both fields live
   unboxed and mutation does not allocate. *)
type acc = { mutable hi : float; mutable lo : float }

let make () = { hi = 0.0; lo = 0.0 }

let[@inline] clear t =
  t.hi <- 0.0;
  t.lo <- 0.0

(* A double double plane pair: plane 0 holds the high limbs, plane 1 the
   low limbs (the staggered device layout of [Staggered]). *)
type duo = { d0 : float array; d1 : float array }

let duo (planes : float array array) = { d0 = planes.(0); d1 = planes.(1) }

let[@inline] load t (x : duo) i =
  t.hi <- x.d0.(i);
  t.lo <- x.d1.(i)

let[@inline] store t (x : duo) i =
  x.d0.(i) <- t.hi;
  x.d1.(i) <- t.lo

(* t := t + (bhi, blo): the accurate ieee_add of [Double_double.Pre.add],
   fully unrolled (two_sum / two_sum / quick_two_sum / quick_two_sum). *)
let[@inline] add_parts t bhi blo =
  let ahi = t.hi and alo = t.lo in
  (* s, e = two_sum ahi bhi *)
  let s = ahi +. bhi in
  let bb = s -. ahi in
  let e = (ahi -. (s -. bb)) +. (bhi -. bb) in
  (* t1, t2 = two_sum alo blo *)
  let t1 = alo +. blo in
  let bb2 = t1 -. alo in
  let t2 = (alo -. (t1 -. bb2)) +. (blo -. bb2) in
  let e = e +. t1 in
  (* s, e = quick_two_sum s e *)
  let s' = s +. e in
  let e' = e -. (s' -. s) in
  let e' = e' +. t2 in
  (* hi, lo = quick_two_sum s' e' *)
  let hi = s' +. e' in
  let lo = e' -. (hi -. s') in
  t.hi <- hi;
  t.lo <- lo

(* t := t - (bhi, blo): [Double_double.Pre.sub], unrolled (two_diff based,
   not add-of-negation, to stay bit-identical with the generic path). *)
let[@inline] sub_parts t bhi blo =
  let ahi = t.hi and alo = t.lo in
  (* d, e = two_diff ahi bhi *)
  let d = ahi -. bhi in
  let bb = d -. ahi in
  let e = (ahi -. (d -. bb)) -. (bhi +. bb) in
  (* t1, t2 = two_diff alo blo *)
  let t1 = alo -. blo in
  let bb2 = t1 -. alo in
  let t2 = (alo -. (t1 -. bb2)) -. (blo +. bb2) in
  let e = e +. t1 in
  let s' = d +. e in
  let e' = e -. (s' -. d) in
  let e' = e' +. t2 in
  let hi = s' +. e' in
  let lo = e' -. (hi -. s') in
  t.hi <- hi;
  t.lo <- lo

let[@inline] add t (x : duo) i = add_parts t x.d0.(i) x.d1.(i)

(* t := a[ia] * b[ib]: [Double_double.Pre.mul], unrolled (two_prod via
   fused multiply-add, cross terms in plain double, quick_two_sum). *)
let[@inline] mul_set t (a : duo) ia (b : duo) ib =
  let ahi = a.d0.(ia) and alo = a.d1.(ia) in
  let bhi = b.d0.(ib) and blo = b.d1.(ib) in
  let p = ahi *. bhi in
  let e = Float.fma ahi bhi (-.p) in
  let e = e +. ((ahi *. blo) +. (alo *. bhi)) in
  let hi = p +. e in
  let lo = e -. (hi -. p) in
  t.hi <- hi;
  t.lo <- lo

(* t := t + a[ia] * b[ib], the fused inner step of every dot-shaped
   kernel; exactly [K.add t (K.mul a b)] of the generic path. *)
let[@inline] mul_add t (a : duo) ia (b : duo) ib =
  let ahi = a.d0.(ia) and alo = a.d1.(ia) in
  let bhi = b.d0.(ib) and blo = b.d1.(ib) in
  let p = ahi *. bhi in
  let e = Float.fma ahi bhi (-.p) in
  let e = e +. ((ahi *. blo) +. (alo *. bhi)) in
  let phi = p +. e in
  let plo = e -. (phi -. p) in
  add_parts t phi plo

(* x[i] := x[i] - t, the write-back of the update kernels; exactly
   [K.sub x t] of the generic path. *)
let[@inline] sub_from (x : duo) i t =
  let bhi = t.hi and blo = t.lo in
  let ahi = x.d0.(i) and alo = x.d1.(i) in
  let d = ahi -. bhi in
  let bb = d -. ahi in
  let e = (ahi -. (d -. bb)) -. (bhi +. bb) in
  let t1 = alo -. blo in
  let bb2 = t1 -. alo in
  let t2 = (alo -. (t1 -. bb2)) -. (blo +. bb2) in
  let e = e +. t1 in
  let s' = d +. e in
  let e' = e -. (s' -. d) in
  let e' = e' +. t2 in
  let hi = s' +. e' in
  let lo = e' -. (hi -. s') in
  x.d0.(i) <- hi;
  x.d1.(i) <- lo
