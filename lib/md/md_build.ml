(* Completes a [PRE] arithmetic core into the full signature [S]:
   comparisons from the limb representation, Newton square root, and
   decimal string conversion (QDlib-style digit extraction). *)

module Make (B : Md_sig.PRE) : Md_sig.S with type t = B.t = struct
  include B

  let instrumented = false
  let eps = 2.0 ** (-52.0 *. float_of_int limbs)
  let two = of_float 2.0
  let ten = of_float 10.0
  let limb x i = (to_limbs x).(i)
  let half = of_float 0.5

  (* A normalized expansion is sorted by decreasing magnitude with
     non-overlapping limbs, so lexicographic limb comparison orders the
     represented values. *)
  let compare a b =
    let la = to_limbs a and lb = to_limbs b in
    let rec go i =
      if i >= limbs then 0
      else
        let c = Float.compare la.(i) lb.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

  let equal a b = compare a b = 0

  let sign x =
    let l = to_limbs x in
    if l.(0) > 0.0 then 1 else if l.(0) < 0.0 then -1 else 0

  let is_zero x = sign x = 0
  let min a b = if compare a b <= 0 then a else b
  let max a b = if compare a b >= 0 then a else b

  let of_int i =
    (* Integers up to 2^53 are exact in one limb; beyond that split. *)
    if Stdlib.abs i < 0x20000000000000 then of_float (float_of_int i)
    else
      let q = i / 0x2000000 and r = i mod 0x2000000 in
      add_float (mul_float (of_float (float_of_int q)) 33554432.0)
        (float_of_int r)

  (* Newton iteration on the inverse square root, which needs no division:
     x <- x + x (1 - a x^2) / 2.  Each step doubles the number of correct
     limbs, so ceil(log2 limbs) + 1 steps suffice starting from a correctly
     rounded double seed; a final Karp correction tightens the last limb. *)
  let sqrt a =
    let a0 = to_float a in
    if a0 = 0.0 then zero
    else if a0 < 0.0 || not (is_finite a) then of_float Float.nan
    else begin
      let steps =
        let rec bits k n = if n >= limbs then k else bits (k + 1) (n * 2) in
        bits 1 1
      in
      let x = ref (of_float (1.0 /. Float.sqrt a0)) in
      for _ = 1 to steps do
        let ax2 = mul a (mul !x !x) in
        x := add !x (mul !x (mul (sub one ax2) half))
      done;
      let r = mul a !x in
      (* r + (a - r^2) * x / 2 *)
      add r (mul (sub a (mul r r)) (mul !x half))
    end

  let ceil x = neg (floor (neg x))
  let trunc x = if sign x >= 0 then floor x else ceil x

  let round x =
    if sign x >= 0 then floor (add_float x 0.5)
    else ceil (add_float x (-0.5))

  let ldexp x k =
    (* Stay within the double exponent range one factor at a time. *)
    if Stdlib.abs k <= 1000 then mul_pwr2 x (2.0 ** float_of_int k)
    else begin
      let step = if k > 0 then 1000 else -1000 in
      let r = ref x and left = ref k in
      while !left <> 0 do
        let s = if Stdlib.abs !left > 1000 then step else !left in
        r := mul_pwr2 !r (2.0 ** float_of_int s);
        left := !left - s
      done;
      !r
    end

  let fmod a b = sub a (mul b (trunc (div a b)))

  let rec pow10 n =
    if n < 0 then div one (pow10 (-n))
    else begin
      (* binary exponentiation on the exact base 10 *)
      let r = ref one and b = ref ten and n = ref n in
      while !n > 0 do
        if !n land 1 = 1 then r := mul !r !b;
        n := !n asr 1;
        if !n > 0 then b := mul !b !b
      done;
      !r
    end

  let default_digits = (limbs * 16) + 1

  let to_string ?(digits = default_digits) x =
    let digits = Stdlib.max 1 digits in
    if not (is_finite x) then
      let h = to_float x in
      if Float.is_nan h then "nan" else if h > 0.0 then "inf" else "-inf"
    else if is_zero x then "0." ^ String.make (digits - 1) '0' ^ "e+00"
    else begin
      let negative = sign x < 0 in
      let r = abs x in
      let e0 = int_of_float (Float.floor (Float.log10 (to_float r))) in
      let r = if e0 <> 0 then div r (pow10 e0) else r in
      (* The double estimate of the exponent can be off by one. *)
      let r = ref r and e = ref e0 in
      if compare !r ten >= 0 then begin
        r := div !r ten;
        incr e
      end;
      if compare !r one < 0 then begin
        r := mul !r ten;
        decr e
      end;
      (* Extract digits+1 digits, the last one for rounding. *)
      let n = digits + 1 in
      let d = Array.make n 0 in
      for i = 0 to n - 1 do
        let di = int_of_float (to_float (floor !r)) in
        d.(i) <- di;
        r := mul_float (sub !r (of_int di)) 10.0
      done;
      (* Repair out-of-range digits by borrowing/carrying. *)
      for i = n - 1 downto 1 do
        if d.(i) < 0 then begin
          d.(i) <- d.(i) + 10;
          d.(i - 1) <- d.(i - 1) - 1
        end
        else if d.(i) > 9 then begin
          d.(i) <- d.(i) - 10;
          d.(i - 1) <- d.(i - 1) + 1
        end
      done;
      (* Round on the extra digit. *)
      if d.(n - 1) >= 5 then begin
        let i = ref (n - 2) in
        d.(!i) <- d.(!i) + 1;
        while !i > 0 && d.(!i) > 9 do
          d.(!i) <- 0;
          decr i;
          d.(!i) <- d.(!i) + 1
        done
      end;
      let d, e =
        if d.(0) > 9 then begin
          (* 9.99... rounded up: shift right. *)
          let d' = Array.make n 0 in
          d'.(0) <- 1;
          (d', !e + 1)
        end
        else (d, !e)
      in
      let b = Buffer.create (digits + 8) in
      if negative then Buffer.add_char b '-';
      Buffer.add_char b (Char.chr (Char.code '0' + d.(0)));
      Buffer.add_char b '.';
      for i = 1 to digits - 1 do
        Buffer.add_char b (Char.chr (Char.code '0' + d.(i)))
      done;
      Buffer.add_string b (Printf.sprintf "e%+03d" e);
      Buffer.contents b
    end

  let of_string s =
    let n = String.length s in
    if n = 0 then invalid_arg "of_string: empty";
    let i = ref 0 in
    let negative =
      if s.[0] = '-' then begin
        incr i;
        true
      end
      else begin
        if s.[0] = '+' then incr i;
        false
      end
    in
    let r = ref zero in
    let frac = ref 0 in
    let seen_point = ref false in
    let seen_digit = ref false in
    let expo = ref 0 in
    (try
       while !i < n do
         let c = s.[!i] in
         if c >= '0' && c <= '9' then begin
           seen_digit := true;
           r := add_float (mul_float !r 10.0) (float_of_int (Char.code c - 48));
           if !seen_point then incr frac
         end
         else if c = '.' then begin
           if !seen_point then invalid_arg "of_string: two points";
           seen_point := true
         end
         else if c = '_' then ()
         else if c = 'e' || c = 'E' then begin
           expo := int_of_string (String.sub s (!i + 1) (n - !i - 1));
           raise Exit
         end
         else invalid_arg (Printf.sprintf "of_string: bad character %C" c);
         incr i
       done
     with Exit -> ());
    if not !seen_digit then invalid_arg "of_string: no digits";
    let p = !expo - !frac in
    (* Dividing by the exact power of ten keeps decimals like 0.5 exact. *)
    let v =
      if p = 0 then !r
      else if p > 0 then mul !r (pow10 p)
      else div !r (pow10 (-p))
    in
    if negative then neg v else v

  let pp fmt x = Format.pp_print_string fmt (to_string x)

  module Infix = struct
    let ( + ) = add
    let ( - ) = sub
    let ( * ) = mul
    let ( / ) = div
    let ( ~- ) = neg
    let ( = ) = equal
    let ( <> ) a b = not (equal a b)
    let ( < ) a b = compare a b < 0
    let ( > ) a b = compare a b > 0
    let ( <= ) a b = compare a b <= 0
    let ( >= ) a b = compare a b >= 0
  end
end
