(* Double double arithmetic: an unevaluated sum of two doubles giving
   roughly 32 decimal digits.  These are the accurate ("IEEE-style")
   algorithms of QDlib [8], fully unrolled. *)

module Pre = struct
  type t = { hi : float; lo : float }

  let limbs = 2
  let name = "double double"
  let zero = { hi = 0.0; lo = 0.0 }
  let one = { hi = 1.0; lo = 0.0 }
  let of_float x = { hi = x; lo = 0.0 }
  let to_float x = x.hi

  let of_limbs a =
    let r = Renorm.renormalize ~m:2 a in
    { hi = r.(0); lo = r.(1) }

  let of_limbs_exact a = { hi = a.(0); lo = a.(1) }

  let to_limbs x = [| x.hi; x.lo |]

  let blit_limbs x (dst : float array) off =
    dst.(off) <- x.hi;
    dst.(off + 1) <- x.lo

  let add a b =
    let s, e = Eft.two_sum a.hi b.hi in
    let t1, t2 = Eft.two_sum a.lo b.lo in
    let e = e +. t1 in
    let s, e = Eft.quick_two_sum s e in
    let e = e +. t2 in
    let hi, lo = Eft.quick_two_sum s e in
    { hi; lo }

  let sub a b =
    let s, e = Eft.two_diff a.hi b.hi in
    let t1, t2 = Eft.two_diff a.lo b.lo in
    let e = e +. t1 in
    let s, e = Eft.quick_two_sum s e in
    let e = e +. t2 in
    let hi, lo = Eft.quick_two_sum s e in
    { hi; lo }

  let mul a b =
    let p, e = Eft.two_prod a.hi b.hi in
    let e = e +. ((a.hi *. b.lo) +. (a.lo *. b.hi)) in
    let hi, lo = Eft.quick_two_sum p e in
    { hi; lo }

  let add_float a b =
    let s, e = Eft.two_sum a.hi b in
    let e = e +. a.lo in
    let hi, lo = Eft.quick_two_sum s e in
    { hi; lo }

  let mul_float a b =
    let p, e = Eft.two_prod a.hi b in
    let e = e +. (a.lo *. b) in
    let hi, lo = Eft.quick_two_sum p e in
    { hi; lo }

  let div a b =
    let q1 = a.hi /. b.hi in
    let r = sub a (mul_float b q1) in
    let q2 = r.hi /. b.hi in
    let r = sub r (mul_float b q2) in
    let q3 = r.hi /. b.hi in
    let q1, q2 = Eft.quick_two_sum q1 q2 in
    add_float { hi = q1; lo = q2 } q3

  let neg a = { hi = -.a.hi; lo = -.a.lo }
  let abs a = if a.hi < 0.0 then neg a else a
  let mul_pwr2 a p = { hi = a.hi *. p; lo = a.lo *. p }

  let floor a =
    let hi = Float.floor a.hi in
    if hi = a.hi then begin
      (* The high limb is already integral; floor the tail and carry. *)
      let lo = Float.floor a.lo in
      let hi, lo = Eft.quick_two_sum hi lo in
      { hi; lo }
    end
    else { hi; lo = 0.0 }

  let is_finite a = Float.is_finite a.hi && Float.is_finite a.lo
end

include Md_build.Make (Pre)
