(* Allocation-free quad double arithmetic on staggered limb planes.

   Mirrors the accurate QDlib algorithms of [Quad_double] floating point
   operation for floating point operation, so the flat kernels produce
   limb for limb the same results as the generic [Scalar.S] path — but
   with no per-operation allocation: every intermediate lives in an
   unboxed local float or in one of the small scratch arrays of a [ctx]
   that a kernel allocates once per block and reuses for every element.

   Quad double numbers are passed around as (planes, index): a [quad] is
   the four significance-sorted planes of the staggered layout, and an
   individual value is the four doubles at one index. *)

type quad = {
  q0 : float array;
  q1 : float array;
  q2 : float array;
  q3 : float array;
}

let quad (planes : float array array) =
  { q0 = planes.(0); q1 = planes.(1); q2 = planes.(2); q3 = planes.(3) }

(* Per-block scratch.  The mutable int fields replace the int refs of the
   reference implementation; float state lives in float arrays (unboxed
   storage), never in mixed-record fields (which would box). *)
type ctx = {
  prod : float array; (* 4: the last product *)
  xx : float array; (* 4: merge output of the accurate addition *)
  nb : float array; (* 4: negated operand of a subtraction *)
  rt : float array; (* 5: renormalization scratch (input, clobbered) *)
  out : float array; (* 4: renormalization output *)
  uv : float array; (* 3: the (u, v) window of ieee_add + a tail slot *)
  mutable mi : int; (* merge cursor into the first operand *)
  mutable mj : int; (* merge cursor into the second operand *)
  mutable mk : int; (* next output slot of the merge *)
}

let make_ctx () =
  {
    prod = Array.make 4 0.0;
    xx = Array.make 4 0.0;
    nb = Array.make 4 0.0;
    rt = Array.make 5 0.0;
    out = Array.make 4 0.0;
    uv = Array.make 3 0.0;
    mi = 0;
    mj = 0;
    mk = 0;
  }

let[@inline] clear (s : float array) =
  s.(0) <- 0.0;
  s.(1) <- 0.0;
  s.(2) <- 0.0;
  s.(3) <- 0.0

let[@inline] load (s : float array) (x : quad) i =
  s.(0) <- x.q0.(i);
  s.(1) <- x.q1.(i);
  s.(2) <- x.q2.(i);
  s.(3) <- x.q3.(i)

let[@inline] store (s : float array) (x : quad) i =
  x.q0.(i) <- s.(0);
  x.q1.(i) <- s.(1);
  x.q2.(i) <- s.(2);
  x.q3.(i) <- s.(3)

(* [renorm ctx n] compresses ctx.rt.(0 .. n-1) into ctx.out, performing
   exactly the operations of [Renorm.renormalize ~m:4] (single pass).
   ctx.rt is clobbered; ctx.out is zeroed first, as the reference does. *)
let renorm ctx n =
  let t = ctx.rt and out = ctx.out in
  out.(0) <- 0.0;
  out.(1) <- 0.0;
  out.(2) <- 0.0;
  out.(3) <- 0.0;
  (* Backward two_sum ladder; the running carry is kept in t.(i) itself
     (identical values to the ref-carried original). *)
  for i = n - 2 downto 0 do
    let a = t.(i) and b = t.(i + 1) in
    let s = a +. b in
    let bb = s -. a in
    let e = (a -. (s -. bb)) +. (b -. bb) in
    t.(i) <- s;
    t.(i + 1) <- e
  done;
  (* Forward pass: commit each nonzero error as the next output limb. *)
  ctx.mi <- 1;
  ctx.mk <- 0;
  ctx.uv.(0) <- t.(0);
  while ctx.mi < n && ctx.mk < 4 do
    let a = ctx.uv.(0) and b = t.(ctx.mi) in
    let s = a +. b in
    let e = b -. (s -. a) in
    if e <> 0.0 then begin
      out.(ctx.mk) <- s;
      ctx.mk <- ctx.mk + 1;
      ctx.uv.(0) <- e
    end
    else ctx.uv.(0) <- s;
    ctx.mi <- ctx.mi + 1
  done;
  if ctx.mk < 4 then out.(ctx.mk) <- ctx.uv.(0)

(* [merge_next ctx aa bb] pops the next limb of the merge-by-decreasing-
   magnitude of aa and bb (the [next] closure of [Quad_double.Pre.add],
   with the cursors kept in ctx instead of captured refs). *)
let[@inline] merge_next ctx (aa : float array) (bb : float array) =
  if ctx.mi >= 4 then begin
    let t = bb.(ctx.mj) in
    ctx.mj <- ctx.mj + 1;
    t
  end
  else if ctx.mj >= 4 || Float.abs aa.(ctx.mi) > Float.abs bb.(ctx.mj) then begin
    let t = aa.(ctx.mi) in
    ctx.mi <- ctx.mi + 1;
    t
  end
  else begin
    let t = bb.(ctx.mj) in
    ctx.mj <- ctx.mj + 1;
    t
  end

(* [add ctx x y] sets x := x + y (both 4-limb arrays), the accurate
   ieee_add of [Quad_double.Pre.add]: merge the eight limbs by decreasing
   magnitude through a sliding two-term window, then renormalize. *)
let add ctx (x : float array) (y : float array) =
  let aa = x and bb = y in
  let w = ctx.xx in
  w.(0) <- 0.0;
  w.(1) <- 0.0;
  w.(2) <- 0.0;
  w.(3) <- 0.0;
  ctx.mi <- 0;
  ctx.mj <- 0;
  ctx.mk <- 0;
  let uv = ctx.uv in
  uv.(0) <- merge_next ctx aa bb;
  uv.(1) <- merge_next ctx aa bb;
  (* u, v := quick_two_sum u v *)
  (let a = uv.(0) and b = uv.(1) in
   let s = a +. b in
   let e = b -. (s -. a) in
   uv.(0) <- s;
   uv.(1) <- e);
  (try
     while ctx.mk < 4 do
       if ctx.mi >= 4 && ctx.mj >= 4 then begin
         w.(ctx.mk) <- uv.(0);
         if ctx.mk < 3 then begin
           ctx.mk <- ctx.mk + 1;
           w.(ctx.mk) <- uv.(1)
         end;
         raise Exit
       end;
       let t = merge_next ctx aa bb in
       (* s, u', v' = quick_three_accum u v t *)
       let u = uv.(0) and v = uv.(1) in
       let s1 = v +. t in
       let bb1 = s1 -. v in
       let v' = (v -. (s1 -. bb1)) +. (t -. bb1) in
       let s2 = u +. s1 in
       let bb2 = s2 -. u in
       let u' = (u -. (s2 -. bb2)) +. (s1 -. bb2) in
       let za = u' <> 0.0 and zb = v' <> 0.0 in
       let s, nu, nv =
         if za && zb then (s2, u', v')
         else if not zb then (0.0, s2, u')
         else (0.0, s2, v')
       in
       uv.(0) <- nu;
       uv.(1) <- nv;
       if s <> 0.0 then begin
         w.(ctx.mk) <- s;
         ctx.mk <- ctx.mk + 1
       end
     done;
     (* All four output slots filled: sweep the leftovers into the tail. *)
     uv.(2) <- 0.0;
     for k = ctx.mi to 3 do
       uv.(2) <- uv.(2) +. aa.(k)
     done;
     for k = ctx.mj to 3 do
       uv.(2) <- uv.(2) +. bb.(k)
     done;
     w.(3) <- w.(3) +. uv.(2) +. uv.(0) +. uv.(1)
   with Exit -> ());
  (* renorm4 w into x *)
  let rt = ctx.rt in
  rt.(0) <- w.(0);
  rt.(1) <- w.(1);
  rt.(2) <- w.(2);
  rt.(3) <- w.(3);
  renorm ctx 4;
  x.(0) <- ctx.out.(0);
  x.(1) <- ctx.out.(1);
  x.(2) <- ctx.out.(2);
  x.(3) <- ctx.out.(3)

(* [sub ctx x y] sets x := x - y, as [Quad_double.Pre.sub] does: the
   accurate addition of the negation. *)
let sub ctx (x : float array) (y : float array) =
  let nb = ctx.nb in
  nb.(0) <- -.y.(0);
  nb.(1) <- -.y.(1);
  nb.(2) <- -.y.(2);
  nb.(3) <- -.y.(3);
  add ctx x nb

(* [mul ctx dst a ia b ib] sets dst := a[ia] * b[ib]: the accurate
   multiplication of [Quad_double.Pre.mul], all partial products of order
   < 4 with their two_prod errors, order-4 terms folded in plain double,
   then the final renormalization of the five-term result. *)
let mul ctx (dst : float array) (a : quad) ia (b : quad) ib =
  let a0 = a.q0.(ia) and a1 = a.q1.(ia) and a2 = a.q2.(ia) and a3 = a.q3.(ia) in
  let b0 = b.q0.(ib) and b1 = b.q1.(ib) and b2 = b.q2.(ib) and b3 = b.q3.(ib) in
  (* p, q = two_prod for every partial product of order < 3. *)
  let p0 = a0 *. b0 in
  let q0 = Float.fma a0 b0 (-.p0) in
  let p1 = a0 *. b1 in
  let q1 = Float.fma a0 b1 (-.p1) in
  let p2 = a1 *. b0 in
  let q2 = Float.fma a1 b0 (-.p2) in
  let p3 = a0 *. b2 in
  let q3 = Float.fma a0 b2 (-.p3) in
  let p4 = a1 *. b1 in
  let q4 = Float.fma a1 b1 (-.p4) in
  let p5 = a2 *. b0 in
  let q5 = Float.fma a2 b0 (-.p5) in
  (* p1, p2, q0 = three_sum p1 p2 q0 *)
  let t1 = p1 +. p2 in
  let bb = t1 -. p1 in
  let t2 = (p1 -. (t1 -. bb)) +. (p2 -. bb) in
  let s0 = q0 +. t1 in
  let bb = s0 -. q0 in
  let t3 = (q0 -. (s0 -. bb)) +. (t1 -. bb) in
  let s1 = t2 +. t3 in
  let bb = s1 -. t2 in
  let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
  let p1 = s0 and p2 = s1 and q0 = s2 in
  (* p2, q1, q2 = three_sum p2 q1 q2 *)
  let t1 = p2 +. q1 in
  let bb = t1 -. p2 in
  let t2 = (p2 -. (t1 -. bb)) +. (q1 -. bb) in
  let s0 = q2 +. t1 in
  let bb = s0 -. q2 in
  let t3 = (q2 -. (s0 -. bb)) +. (t1 -. bb) in
  let s1 = t2 +. t3 in
  let bb = s1 -. t2 in
  let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
  let p2 = s0 and q1 = s1 and q2 = s2 in
  (* p3, p4, p5 = three_sum p3 p4 p5 *)
  let t1 = p3 +. p4 in
  let bb = t1 -. p3 in
  let t2 = (p3 -. (t1 -. bb)) +. (p4 -. bb) in
  let s0 = p5 +. t1 in
  let bb = s0 -. p5 in
  let t3 = (p5 -. (s0 -. bb)) +. (t1 -. bb) in
  let s1 = t2 +. t3 in
  let bb = s1 -. t2 in
  let s2 = (t2 -. (s1 -. bb)) +. (t3 -. bb) in
  let p3 = s0 and p4 = s1 and p5 = s2 in
  (* (s0, s1, s2) = (p2, q1, q2) + (p3, p4, p5) *)
  let s0 = p2 +. p3 in
  let bb = s0 -. p2 in
  let t0 = (p2 -. (s0 -. bb)) +. (p3 -. bb) in
  let s1 = q1 +. p4 in
  let bb = s1 -. q1 in
  let t1 = (q1 -. (s1 -. bb)) +. (p4 -. bb) in
  let s2 = q2 +. p5 in
  let s1' = s1 +. t0 in
  let bb = s1' -. s1 in
  let t0' = (s1 -. (s1' -. bb)) +. (t0 -. bb) in
  let s1 = s1' and t0 = t0' in
  let s2 = s2 +. t0 +. t1 in
  (* O(eps^3) terms. *)
  let p6 = a0 *. b3 in
  let q6 = Float.fma a0 b3 (-.p6) in
  let p7 = a1 *. b2 in
  let q7 = Float.fma a1 b2 (-.p7) in
  let p8 = a2 *. b1 in
  let q8 = Float.fma a2 b1 (-.p8) in
  let p9 = a3 *. b0 in
  let q9 = Float.fma a3 b0 (-.p9) in
  (* Nine-two sum of q0, s1, q3, q4, q5, p6, p7, p8, p9. *)
  let u = q0 +. q3 in
  let bb = u -. q0 in
  let q3' = (q0 -. (u -. bb)) +. (q3 -. bb) in
  let q0 = u and q3 = q3' in
  let u = q4 +. q5 in
  let bb = u -. q4 in
  let q5' = (q4 -. (u -. bb)) +. (q5 -. bb) in
  let q4 = u and q5 = q5' in
  let u = p6 +. p7 in
  let bb = u -. p6 in
  let p7' = (p6 -. (u -. bb)) +. (p7 -. bb) in
  let p6 = u and p7 = p7' in
  let u = p8 +. p9 in
  let bb = u -. p8 in
  let p9' = (p8 -. (u -. bb)) +. (p9 -. bb) in
  let p8 = u and p9 = p9' in
  let t0'' = q0 +. q4 in
  let bb = t0'' -. q0 in
  let t1'' = (q0 -. (t0'' -. bb)) +. (q4 -. bb) in
  let t0 = t0'' and t1 = t1'' in
  let t1 = t1 +. q3 +. q5 in
  let r0 = p6 +. p8 in
  let bb = r0 -. p6 in
  let r1 = (p6 -. (r0 -. bb)) +. (p8 -. bb) in
  let r1 = r1 +. p7 +. p9 in
  let q3 = t0 +. r0 in
  let bb = q3 -. t0 in
  let q4 = (t0 -. (q3 -. bb)) +. (r0 -. bb) in
  let q4 = q4 +. t1 +. r1 in
  let t0 = q3 +. s1 in
  let bb = t0 -. q3 in
  let t1 = (q3 -. (t0 -. bb)) +. (s1 -. bb) in
  let t1 = t1 +. q4 in
  (* O(eps^4) terms. *)
  let t1 =
    t1 +. (a1 *. b3) +. (a2 *. b2) +. (a3 *. b1) +. q6 +. q7 +. q8 +. q9
    +. s2
  in
  let rt = ctx.rt in
  rt.(0) <- p0;
  rt.(1) <- p1;
  rt.(2) <- s0;
  rt.(3) <- t0;
  rt.(4) <- t1;
  renorm ctx 5;
  dst.(0) <- ctx.out.(0);
  dst.(1) <- ctx.out.(1);
  dst.(2) <- ctx.out.(2);
  dst.(3) <- ctx.out.(3)

(* [mul_add ctx acc a ia b ib]: acc := acc + a[ia] * b[ib], exactly
   [K.add acc (K.mul a b)] of the generic path. *)
let[@inline] mul_add ctx (acc : float array) (a : quad) ia (b : quad) ib =
  mul ctx ctx.prod a ia b ib;
  add ctx acc ctx.prod

(* [sub_from ctx x i acc]: x[i] := x[i] - acc, exactly [K.sub x acc]. *)
let sub_from ctx (x : quad) i (acc : float array) =
  let w = ctx.prod in
  load w x i;
  sub ctx w acc;
  store w x i
