(** Compensated dual checksums over limb data.

    Two Neumaier-compensated sums — one plain, one index-weighted — over
    a float sequence.  The accumulation order is fixed, so identical
    data produces bit-identical digests and a single flipped mantissa
    bit changes at least one of the four accumulator words: comparing
    digests with {!matches} (exact, bit-level) detects corruption of
    data that is supposed to be immutable, e.g. the staggered U planes
    of back substitution after the diagonal tiles were inverted.  The
    index weighting catches the swap/permutation cases a plain sum is
    blind to. *)

type t = {
  sum : float;
  comp : float;  (** Neumaier compensation term of [sum] *)
  wsum : float;  (** index-weighted sum *)
  wcomp : float;
  count : int;
}

val of_array : float array -> t
val of_planes : float array array -> t
(** Planes concatenated in order; equivalent to checksumming the
    flattened sequence. *)

val of_scalars : to_planes:('a -> float array) -> 'a array -> t
(** Digest of an array of multi-double scalars via their limb planes. *)

val of_iter : ((float -> unit) -> unit) -> t
(** [of_iter iter] digests whatever float sequence [iter] feeds to its
    callback, in that order — for producers that expose an iteration
    rather than an array (e.g. the back substitution device state, which
    feeds raw plane words on the flat path and scalar limbs on the boxed
    one). *)

val matches : t -> t -> bool
(** Bit-exact comparison of all accumulator words (NaN-safe: compares
    the IEEE bit patterns, not the float values). *)
