(* Neumaier-compensated plain + index-weighted checksums.  Sequential,
   fixed-order accumulation: same data => bit-identical digest. *)

type t = {
  sum : float;
  comp : float;
  wsum : float;
  wcomp : float;
  count : int;
}

type acc = {
  mutable s : float;
  mutable c : float;
  mutable ws : float;
  mutable wc : float;
  mutable n : int;
}

let add acc x =
  let s' = acc.s +. x in
  acc.c <-
    (acc.c
    +. if Float.abs acc.s >= Float.abs x then acc.s -. s' +. x
       else x -. s' +. acc.s);
  acc.s <- s';
  (* Weight by a small cycling factor so transposed/permuted values do
     not cancel; weights are exact small integers, so the products are
     exact scalings of x. *)
  let w = float_of_int ((acc.n land 0x3ff) + 1) in
  let wx = w *. x in
  let ws' = acc.ws +. wx in
  acc.wc <-
    (acc.wc
    +. if Float.abs acc.ws >= Float.abs wx then acc.ws -. ws' +. wx
       else wx -. ws' +. acc.ws);
  acc.ws <- ws';
  acc.n <- acc.n + 1

let finish acc =
  { sum = acc.s; comp = acc.c; wsum = acc.ws; wcomp = acc.wc; count = acc.n }

let fresh () = { s = 0.0; c = 0.0; ws = 0.0; wc = 0.0; n = 0 }

let of_array a =
  let acc = fresh () in
  Array.iter (add acc) a;
  finish acc

let of_planes planes =
  let acc = fresh () in
  Array.iter (Array.iter (add acc)) planes;
  finish acc

let of_scalars ~to_planes xs =
  let acc = fresh () in
  Array.iter (fun x -> Array.iter (add acc) (to_planes x)) xs;
  finish acc

let of_iter iter =
  let acc = fresh () in
  iter (add acc);
  finish acc

let bits = Int64.bits_of_float
let feq a b = Int64.equal (bits a) (bits b)

let matches a b =
  a.count = b.count && feq a.sum b.sum && feq a.comp b.comp
  && feq a.wsum b.wsum && feq a.wcomp b.wcomp
