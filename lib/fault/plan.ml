(* Seeded fault plans: where faults strike, what the detectors saw, and
   the running tally of the recovery ladder.  Everything deterministic
   from (seed, config) — the injection stream advances exactly once per
   launch/transfer site, and detector probes draw from a separate
   stream so that detection never perturbs injection. *)

module Prng = Dompool.Prng

type kind = Bitflip | Launch_fail | Transfer_corrupt

let all_kinds = [ Bitflip; Launch_fail; Transfer_corrupt ]

let kind_name = function
  | Bitflip -> "bitflip"
  | Launch_fail -> "launch"
  | Transfer_corrupt -> "transfer"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "bitflip" | "bit-flip" | "flip" -> Bitflip
  | "launch" | "launch-fail" | "launchfail" -> Launch_fail
  | "transfer" | "transfer-corrupt" | "corrupt" -> Transfer_corrupt
  | other ->
      invalid_arg
        (Printf.sprintf
           "Fault.Plan.kind_of_string: unknown fault kind %S (expected \
            bitflip, launch or transfer)"
           other)

exception Injected of kind * string

let () =
  Printexc.register_printer (function
    | Injected (k, site) ->
        Some
          (Printf.sprintf "Fault.Plan.Injected(%s at %s)" (kind_name k) site)
    | _ -> None)

type config = {
  seed : int;
  rate : float;
  kinds : kind list;
  max_relaunches : int;
  max_replays : int;
}

let rate_invalid rate = Float.is_nan rate || rate < 0.0 || rate > 1.0

let config ?(kinds = all_kinds) ?(max_relaunches = 2) ?(max_replays = 2) ~seed
    ~rate () =
  if rate_invalid rate then
    invalid_arg
      (Printf.sprintf
         "Fault.Plan.config: fault rate %g is not within [0, 1]" rate);
  if kinds = [] then invalid_arg "Fault.Plan.config: no fault kinds armed";
  if max_relaunches < 0 || max_replays < 0 then
    invalid_arg "Fault.Plan.config: recovery budgets must be non-negative";
  { seed; rate; kinds; max_relaunches; max_replays }

type t = {
  cfg : config;
  inject_rng : Prng.t;
  aux_rng : Prng.t;
  mutable bitflips : int;
  mutable launch_fails : int;
  mutable transfer_faults : int;
  mutable detected : int;
  mutable relaunches : int;
  mutable retransfers : int;
  mutable replays : int;
  mutable escalations : int;
}

let arm ?(salt = 0) cfg =
  let root = Prng.create (cfg.seed + (salt * 0x2545f4914f6cdd1d)) in
  let inject_rng = Prng.split root in
  let aux_rng = Prng.split root in
  {
    cfg;
    inject_rng;
    aux_rng;
    bitflips = 0;
    launch_fails = 0;
    transfer_faults = 0;
    detected = 0;
    relaunches = 0;
    retransfers = 0;
    replays = 0;
    escalations = 0;
  }

let plan_config t = t.cfg
let max_relaunches t = t.cfg.max_relaunches
let max_replays t = t.cfg.max_replays
let aux_rng t = t.aux_rng

(* Metrics handles, resolved on first use against the default registry
   (the registry may be reset between campaigns; handles stay valid).
   [Metrics.once], not [lazy]: armed runs on concurrent fleet workers
   may hit the first strike together, and a raced lazy raises. *)
let registry () = Obs.Metrics.default ()

let m_injected =
  Obs.Metrics.once (fun () -> Obs.Metrics.counter (registry ()) "faults.injected")

let m_detected =
  Obs.Metrics.once (fun () -> Obs.Metrics.counter (registry ()) "faults.detected")

let m_recovered =
  Obs.Metrics.once (fun () -> Obs.Metrics.counter (registry ()) "faults.recovered")

let m_escaped =
  Obs.Metrics.once (fun () -> Obs.Metrics.counter (registry ()) "faults.escaped")

let incr c = Obs.Metrics.Counter.incr (c ())

let instant name ~stage =
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~cat:"fault"
      ~args:[ ("stage", Obs.Tracer.Str stage) ]
      name

let draw_launch t ~can_corrupt =
  if t.cfg.rate = 0.0 then None
  else if Prng.float t.inject_rng >= t.cfg.rate then None
  else
    let eligible =
      List.filter
        (function
          | Transfer_corrupt -> false
          | Bitflip -> can_corrupt
          | Launch_fail -> true)
        t.cfg.kinds
    in
    match eligible with
    | [] -> None
    | [ k ] -> Some k
    | ks -> Some (List.nth ks (Prng.int t.inject_rng (List.length ks)))

let draw_transfer t =
  if t.cfg.rate = 0.0 then None
  else if Prng.float t.inject_rng >= t.cfg.rate then None
  else if List.mem Transfer_corrupt t.cfg.kinds then Some Transfer_corrupt
  else None

let note_launch_fail t ~stage =
  t.launch_fails <- t.launch_fails + 1;
  (* The driver always observes a failed launch, so injection implies
     detection for this kind. *)
  t.detected <- t.detected + 1;
  incr m_injected;
  incr m_detected;
  instant "fault.launch_fail" ~stage

let note_bitflip t ~stage =
  t.bitflips <- t.bitflips + 1;
  incr m_injected;
  instant "fault.bitflip" ~stage

let note_transfer_fault t =
  t.transfer_faults <- t.transfer_faults + 1;
  (* Staged limb planes carry checksums verified at unpack, so transfer
     corruption is always caught. *)
  t.detected <- t.detected + 1;
  incr m_injected;
  incr m_detected;
  instant "fault.transfer" ~stage:"transfer"

let note_corruption t ~stage ~what =
  ignore t;
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~cat:"fault"
      ~args:[ ("stage", Obs.Tracer.Str stage); ("what", Obs.Tracer.Str what) ]
      "fault.corrupted"

let note_detected t ~stage =
  t.detected <- t.detected + 1;
  incr m_detected;
  instant "fault.detected" ~stage

let note_relaunch t ~stage =
  t.relaunches <- t.relaunches + 1;
  incr m_recovered;
  instant "fault.relaunch" ~stage

let note_retransfer t =
  t.retransfers <- t.retransfers + 1;
  incr m_recovered;
  instant "fault.retransfer" ~stage:"transfer"

let note_replay t ~stage =
  t.replays <- t.replays + 1;
  incr m_recovered;
  instant "fault.replay" ~stage

let note_escalation t ~stage =
  t.escalations <- t.escalations + 1;
  incr m_escaped;
  instant "fault.escalate" ~stage

type tally = {
  bitflips : int;
  launch_fails : int;
  transfer_faults : int;
  detected : int;
  relaunches : int;
  retransfers : int;
  replays : int;
  escalations : int;
}

let zero_tally =
  {
    bitflips = 0;
    launch_fails = 0;
    transfer_faults = 0;
    detected = 0;
    relaunches = 0;
    retransfers = 0;
    replays = 0;
    escalations = 0;
  }

let snapshot (t : t) : tally =
  {
    bitflips = t.bitflips;
    launch_fails = t.launch_fails;
    transfer_faults = t.transfer_faults;
    detected = t.detected;
    relaunches = t.relaunches;
    retransfers = t.retransfers;
    replays = t.replays;
    escalations = t.escalations;
  }

let merge a b =
  {
    bitflips = a.bitflips + b.bitflips;
    launch_fails = a.launch_fails + b.launch_fails;
    transfer_faults = a.transfer_faults + b.transfer_faults;
    detected = a.detected + b.detected;
    relaunches = a.relaunches + b.relaunches;
    retransfers = a.retransfers + b.retransfers;
    replays = a.replays + b.replays;
    escalations = a.escalations + b.escalations;
  }

let injected tl = tl.bitflips + tl.launch_fails + tl.transfer_faults
let recovered tl = tl.relaunches + tl.retransfers + tl.replays

let flip_bit x bit =
  Int64.float_of_bits
    (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L (bit land 63)))

let pp_tally ppf tl =
  Format.fprintf ppf
    "injected %d (flip %d, launch %d, transfer %d) detected %d recovered %d \
     (relaunch %d, retransfer %d, replay %d) escalated %d"
    (injected tl) tl.bitflips tl.launch_fails tl.transfer_faults tl.detected
    (recovered tl) tl.relaunches tl.retransfers tl.replays tl.escalations
