(** Cheap validators over raw limb data.

    These are the invariants the fault detectors lean on: every limb is
    finite, and a multi-double expansion is normalized — limbs in
    decreasing magnitude with non-overlapping mantissas
    ([|l(i+1)| <= 2^-51 * |l(i)|] with slack for the renormalizer's
    one-bit overlap) and zeros only trailing.  They operate on raw
    float arrays so the fault library stays independent of the linear
    algebra layer; solvers assemble limb vectors from [K.to_planes] or
    index the flat staggered planes directly. *)

val finite : float array -> bool
(** Every entry is finite (no NaN / infinity). *)

val finite_planes : float array array -> bool

val normalized : ?overlap:float -> float array -> bool
(** The expansion (most-significant limb first) is normalized:
    [|l(i+1)| <= overlap * |l(i)|] for every adjacent pair, and once a
    limb is zero all following limbs are zero.  [overlap] defaults to
    [2^-49], two bits of slack over the exact non-overlap bound so
    legitimately renormalized data never trips the check.  Non-finite
    limbs fail. *)
