(** Seeded device-chaos plans for the fleet.

    Where {!Plan} injects faults *inside* a solve (bitflips, launch
    errors, transfer corruption), a chaos plan injects *instance-level*
    failures into a running fleet: a worker domain that crashes, a
    worker that hangs and stops draining its queue, or a device that
    browns out and runs every kernel slower by a constant factor.

    A {!config} describes the campaign; {!draw} is a pure function of
    [(config, instance index)], so a campaign replays bit-identically
    from the seed alone and the fleet can be restarted mid-campaign
    without changing which instances fail.  The fleet records every
    triggered event through the [note_*] helpers, which mirror into
    [fleet.chaos.*] metrics counters. *)

type kind =
  | Crash  (** the instance's worker domain exits *)
  | Hang  (** the worker stops draining its queue, holding its job *)
  | Brownout  (** every kernel on the device runs [factor] times slower *)

val all_kinds : kind list
val kind_name : kind -> string

val kind_of_string : string -> kind
(** Inverse of {!kind_name} (also accepts a few aliases).
    @raise Invalid_argument on unknown names. *)

type config = {
  seed : int;  (** campaign seed; same seed + config => same events *)
  rate : float;  (** per-instance strike probability *)
  kinds : kind list;  (** which chaos kinds are armed *)
  after_jobs : int * int;
      (** inclusive range of executed-job counts after which a struck
          instance fails *)
  brownout_factor : float;  (** slowdown factor for [Brownout], > 1 *)
}

val config :
  ?kinds:kind list ->
  ?after_jobs:int * int ->
  ?brownout_factor:float ->
  seed:int ->
  rate:float ->
  unit ->
  config
(** Smart constructor.  Defaults: all kinds, strike after 1..4 executed
    jobs, brownout factor 4.
    @raise Invalid_argument when [rate] is NaN or outside [0, 1], when
    [kinds] is empty, when the [after_jobs] range is negative or
    inverted, or when [brownout_factor] is not > 1. *)

type event = {
  kind : kind;
  after : int;  (** executed jobs on the instance before the strike *)
  factor : float;  (** slowdown for [Brownout]; 1.0 otherwise *)
}

val draw : config -> instance:int -> event option
(** The chaos event (if any) destined for fleet instance [instance].
    Pure: every call with the same [(config, instance)] returns the
    same answer. *)

(** {1 Recording events}

    Called by the fleet when a drawn event actually triggers.  Each
    mirrors into a [fleet.chaos.*] counter and an [Obs.Log] record. *)

val note_triggered : kind -> instance:string -> unit
val note_migration : instance:string -> jobs:int -> unit
val note_quarantine : job:string -> unit

(** {1 Tallies} *)

type tally = { crashes : int; hangs : int; brownouts : int }

val tally_of_events : event option list -> tally
(** Aggregate the events a campaign will deal to a pool of instances
    ([draw] applied to each index). *)
