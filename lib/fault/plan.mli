(** Deterministic, seeded fault-injection plans for the GPU simulator.

    A {!config} describes a fault campaign: which fault kinds are armed,
    the per-launch (and per-transfer) strike probability, and how many
    low-level recovery attempts each layer of the recovery ladder may
    spend before escalating.  Arming a config ({!arm}) produces a
    mutable plan [t] that a simulator consults on every launch and
    transfer.  All randomness — both where faults strike and where the
    detectors probe — flows from two splitmix64 streams split off the
    campaign seed, so a campaign replays bit-identically from
    [(seed, config)] alone.

    The plan also keeps the campaign's running tally (faults injected
    per kind, detections, relaunches, replays, escalations) and mirrors
    every event into [Obs.Metrics] counters and [Obs.Tracer] instants,
    so fault activity is visible in metric snapshots and Perfetto
    traces. *)

type kind =
  | Bitflip  (** a limb bit-flip in device-resident data *)
  | Launch_fail  (** a kernel launch that errors out and must rerun *)
  | Transfer_corrupt  (** corruption of a host<->device transfer *)

val all_kinds : kind list
val kind_name : kind -> string

val kind_of_string : string -> kind
(** Inverse of {!kind_name} (also accepts a few aliases).
    @raise Invalid_argument on unknown names. *)

exception Injected of kind * string
(** Raised when a layer of the recovery ladder exhausts its budget and
    escalates; the string names the site (stage label). *)

type config = {
  seed : int;  (** campaign seed; same seed + config => same faults *)
  rate : float;  (** per-launch / per-transfer strike probability *)
  kinds : kind list;  (** which fault kinds are armed *)
  max_relaunches : int;  (** kernel relaunch / retransfer budget *)
  max_replays : int;  (** stage (panel / tile) replay budget *)
}

val config :
  ?kinds:kind list ->
  ?max_relaunches:int ->
  ?max_replays:int ->
  seed:int ->
  rate:float ->
  unit ->
  config
(** Smart constructor.  Defaults: all kinds, 2 relaunches, 2 replays.
    @raise Invalid_argument when [rate] is NaN or outside [0, 1], when
    [kinds] is empty, or when a budget is negative. *)

(** {1 Armed plans} *)

type t

val arm : ?salt:int -> config -> t
(** Arms a config.  [salt] perturbs the seed so several sims inside one
    job (e.g. the QR sim and the back-substitution sim) draw independent
    fault streams from one campaign seed. *)

val plan_config : t -> config
val max_relaunches : t -> int
val max_replays : t -> int

val aux_rng : t -> Dompool.Prng.t
(** The auxiliary stream used for corruption sites and detector probes;
    separate from the injection stream so that detection never changes
    where faults strike. *)

(** {1 Drawing faults}

    Called by the simulator once per launch / transfer.  Advancing the
    injection stream exactly once per site keeps campaigns replayable. *)

val draw_launch : t -> can_corrupt:bool -> kind option
(** A fault for one kernel launch: [Launch_fail], or [Bitflip] when
    armed and [can_corrupt] (the sim executes and has a registered
    corruptor).  [None] when the draw does not strike. *)

val draw_transfer : t -> kind option
(** A fault for one transfer: [Transfer_corrupt] or [None]. *)

(** {1 Recording events}

    Each [note_*] updates the plan's tally and mirrors the event into
    metrics counters ([faults.injected], [faults.detected],
    [faults.recovered], [faults.escaped]) and tracer instants. *)

val note_launch_fail : t -> stage:string -> unit
(** Injected launch failure; counts as detected too (the driver always
    observes a failed launch). *)

val note_bitflip : t -> stage:string -> unit
val note_transfer_fault : t -> unit
(** Injected transfer corruption; counts as detected too (staged limb
    planes carry checksums verified at unpack). *)

val note_corruption : t -> stage:string -> what:string -> unit
(** Tracer-only breadcrumb describing what a bitflip corrupted. *)

val note_detected : t -> stage:string -> unit
(** A solver-level detector (probe, recompute, checksum, guard) caught
    corrupted data. *)

val note_relaunch : t -> stage:string -> unit
val note_retransfer : t -> unit
val note_replay : t -> stage:string -> unit
val note_escalation : t -> stage:string -> unit

(** {1 Tallies} *)

type tally = {
  bitflips : int;
  launch_fails : int;
  transfer_faults : int;
  detected : int;
  relaunches : int;
  retransfers : int;
  replays : int;
  escalations : int;
}

val zero_tally : tally
val snapshot : t -> tally
val merge : tally -> tally -> tally

val injected : tally -> int
(** [bitflips + launch_fails + transfer_faults]. *)

val recovered : tally -> int
(** Low-level recovery events: [relaunches + retransfers + replays]. *)

val pp_tally : Format.formatter -> tally -> unit

(** {1 Corruption helper} *)

val flip_bit : float -> int -> float
(** [flip_bit x bit] flips one bit ([0..63]) of the IEEE-754
    representation of [x] — the model of a single-event upset in one
    limb word. *)

