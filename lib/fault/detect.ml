let finite a =
  let n = Array.length a in
  let rec go i = i >= n || (Float.is_finite a.(i) && go (i + 1)) in
  go 0

let finite_planes planes = Array.for_all finite planes

let normalized ?(overlap = 0x1p-49) l =
  let n = Array.length l in
  let rec go i =
    if i >= n - 1 then n = 0 || Float.is_finite l.(n - 1)
    else if not (Float.is_finite l.(i)) then false
    else if l.(i) = 0.0 then Array.for_all (fun x -> x = 0.0) (Array.sub l i (n - i))
    else if Float.abs l.(i + 1) <= overlap *. Float.abs l.(i) then go (i + 1)
    else false
  in
  go 0
