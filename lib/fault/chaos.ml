(* Seeded device-chaos plans: which fleet instances fail, how, and
   after how many executed jobs.  [draw] is pure in (config, instance
   index) — each instance gets its own splitmix64 stream split off the
   campaign seed — so a campaign replays bit-identically and a restarted
   fleet deals the same hand. *)

module Prng = Dompool.Prng

type kind = Crash | Hang | Brownout

let all_kinds = [ Crash; Hang; Brownout ]

let kind_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Brownout -> "brownout"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "crash" | "die" | "kill" -> Crash
  | "hang" | "stall" | "freeze" -> Hang
  | "brownout" | "brown-out" | "slow" -> Brownout
  | other ->
      invalid_arg
        (Printf.sprintf
           "Fault.Chaos.kind_of_string: unknown chaos kind %S (expected \
            crash, hang or brownout)"
           other)

type config = {
  seed : int;
  rate : float;
  kinds : kind list;
  after_jobs : int * int;
  brownout_factor : float;
}

let rate_invalid rate = Float.is_nan rate || rate < 0.0 || rate > 1.0

let config ?(kinds = all_kinds) ?(after_jobs = (1, 4)) ?(brownout_factor = 4.0)
    ~seed ~rate () =
  if rate_invalid rate then
    invalid_arg
      (Printf.sprintf
         "Fault.Chaos.config: chaos rate %g is not within [0, 1]" rate);
  if kinds = [] then invalid_arg "Fault.Chaos.config: no chaos kinds armed";
  (let lo, hi = after_jobs in
   if lo < 0 || hi < lo then
     invalid_arg
       (Printf.sprintf
          "Fault.Chaos.config: after_jobs range (%d, %d) must satisfy 0 <= \
           lo <= hi"
          lo hi));
  if Float.is_nan brownout_factor || brownout_factor <= 1.0 then
    invalid_arg
      (Printf.sprintf
         "Fault.Chaos.config: brownout factor %g must be > 1" brownout_factor);
  { seed; rate; kinds; after_jobs; brownout_factor }

type event = { kind : kind; after : int; factor : float }

let draw cfg ~instance =
  (* One private stream per instance, so adding or reordering draws for
     one instance never shifts another's fate. *)
  let rng = Prng.create (cfg.seed + ((instance + 1) * 0x2545f4914f6cdd1d)) in
  if Prng.float rng >= cfg.rate then None
  else
    let kind =
      match cfg.kinds with
      | [ k ] -> k
      | ks -> List.nth ks (Prng.int rng (List.length ks))
    in
    let lo, hi = cfg.after_jobs in
    let after = lo + Prng.int rng (hi - lo + 1) in
    let factor = match kind with Brownout -> cfg.brownout_factor | _ -> 1.0 in
    Some { kind; after; factor }

(* Metrics handles resolved on first use ([Metrics.once], not [lazy]:
   concurrent fleet workers may record the first event together). *)
let registry () = Obs.Metrics.default ()

let m_crash =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (registry ()) "fleet.chaos.crashes")

let m_hang =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (registry ()) "fleet.chaos.hangs")

let m_brownout =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (registry ()) "fleet.chaos.brownouts")

let m_migrated =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (registry ()) "fleet.chaos.migrations")

let m_quarantined =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (registry ()) "fleet.chaos.quarantined")

let incr c = Obs.Metrics.Counter.incr (c ())

let note_triggered kind ~instance =
  (match kind with
  | Crash -> incr m_crash
  | Hang -> incr m_hang
  | Brownout -> incr m_brownout);
  Obs.Log.warn
    ~fields:[ ("instance", Obs.Log.Str instance) ]
    (Printf.sprintf "fleet.chaos.%s" (kind_name kind))

let note_migration ~instance ~jobs =
  Obs.Metrics.Counter.incr ~by:jobs (m_migrated ());
  Obs.Log.warn
    ~fields:
      [ ("from", Obs.Log.Str instance); ("jobs", Obs.Log.Int jobs) ]
    "fleet.migrate"

let note_quarantine ~job =
  incr m_quarantined;
  Obs.Log.error ~fields:[ ("job", Obs.Log.Str job) ] "fleet.quarantine"

type tally = { crashes : int; hangs : int; brownouts : int }

let tally_of_events events =
  List.fold_left
    (fun acc -> function
      | None -> acc
      | Some { kind = Crash; _ } -> { acc with crashes = acc.crashes + 1 }
      | Some { kind = Hang; _ } -> { acc with hangs = acc.hangs + 1 }
      | Some { kind = Brownout; _ } ->
          { acc with brownouts = acc.brownouts + 1 })
    { crashes = 0; hangs = 0; brownouts = 0 }
    events
