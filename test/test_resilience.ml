(* Tests for the fleet resilience plane: seeded device chaos (crash /
   hang / brownout), job migration and quarantine, hedged execution,
   circuit breakers, the write-ahead outcome journal, the seeded retry
   jitter, the hardened telemetry-line parser, and concurrent
   backpressure. *)

module P = Multidouble.Precision
module D = Gpusim.Device
module Job = Sched.Job
module F = Sched.Fleet
module S = Sched.Scheduler
module Jn = Sched.Journal
module Chaos = Fault.Chaos
module Json = Harness.Json
module M = Obs.Metrics

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let solve ?(device = "auto") ?inject_failures ?retries ~id () =
  Job.make ?inject_failures ?retries ~id ~kind:Job.Solve ~device ~prec:P.DD
    ~dim:512 ~tile:64 ()

let counter name = M.Counter.value (M.counter (M.default ()) name)

let placement (o : S.outcome) =
  match o.S.placement with
  | Some p -> p
  | None -> Alcotest.failf "%s has no placement record" o.S.job.Job.id

(* A two-instance campaign where instance 0 is struck by [kind] at its
   first claim and instance 1 stays healthy; [Chaos.draw] is pure, so
   the seed search is deterministic. *)
let striking_config kind =
  let rec go seed =
    if seed > 10_000 then Alcotest.fail "no chaos seed found"
    else
      let cfg =
        Chaos.config ~seed ~rate:0.5 ~kinds:[ kind ] ~after_jobs:(0, 0) ()
      in
      match (Chaos.draw cfg ~instance:0, Chaos.draw cfg ~instance:1) with
      | Some _, None -> cfg
      | _ -> go (seed + 1)
  in
  go 0

(* Two classes, no stealing: jobs pinned to the c2050 all queue on the
   doomed instance 0 and can only settle by migrating to the v100. *)
let two_class_config chaos =
  {
    F.Config.default with
    pool = [ (Some D.c2050, 1); (Some D.v100, 1) ];
    max_queue_depth = F.Config.unbounded;
    backoff_ms = 0.0;
    steal = false;
    chaos = Some chaos;
  }

let run_campaign config n =
  let fleet = F.create ~autostart:false config in
  let jobs =
    List.init n (fun i ->
        solve ~device:"c2050" ~id:(Printf.sprintf "cx-%d" i) ())
  in
  List.iter
    (fun j ->
      match F.submit fleet j with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "rejected: %s" (F.reject_message r))
    jobs;
  F.start fleet;
  let outcomes = F.drain fleet in
  let stats = F.stats fleet in
  F.shutdown fleet;
  (outcomes, stats)

(* ---- chaos: crash and hang recovery ---- *)

let test_crash_migrates () =
  let outcomes, stats = run_campaign (two_class_config (striking_config Chaos.Crash)) 4 in
  checki "every job settled" 4 (List.length outcomes);
  checks "instance 0 crashed" "crashed" (List.hd stats).F.state;
  checks "instance 1 healthy" "ok" (List.nth stats 1).F.state;
  List.iter
    (fun o ->
      (match o.S.status with
      | S.Completed _ -> ()
      | S.Failed f -> Alcotest.failf "%s failed: %s" o.S.job.Job.id f.S.message);
      let p = placement o in
      check "migration trail names the dead instance" true
        (p.S.migrations = [ "c2050#0" ]);
      checks "executed on the survivor" "v100#0" p.S.device_id;
      (* A pinned job keeps its simulation identity across migration. *)
      checks "pinned device survived migration" "c2050" o.S.job.Job.device)
    outcomes

let test_hang_reclaimed () =
  let outcomes, stats = run_campaign (two_class_config (striking_config Chaos.Hang)) 4 in
  checki "every job settled" 4 (List.length outcomes);
  checks "instance 0 hung" "hung" (List.hd stats).F.state;
  List.iter
    (fun o ->
      (match o.S.status with
      | S.Completed _ -> ()
      | S.Failed f -> Alcotest.failf "%s failed: %s" o.S.job.Job.id f.S.message);
      check "migration trail names the hung instance" true
        ((placement o).S.migrations = [ "c2050#0" ]))
    outcomes

let test_brownout_completes () =
  let cfg = striking_config Chaos.Brownout in
  let outcomes, stats = run_campaign (two_class_config cfg) 4 in
  checki "every job settled" 4 (List.length outcomes);
  checks "instance 0 browned" "browned" (List.hd stats).F.state;
  (* A browned instance keeps executing — no migrations, just slower
     simulated kernels. *)
  List.iter
    (fun o ->
      (match o.S.status with
      | S.Completed _ -> ()
      | S.Failed f -> Alcotest.failf "%s failed: %s" o.S.job.Job.id f.S.message);
      check "no migration off a browned instance" true
        ((placement o).S.migrations = []))
    outcomes

let test_quarantine () =
  let config =
    { (two_class_config (striking_config Chaos.Crash)) with max_migrations = 0 }
  in
  let outcomes, _ = run_campaign config 3 in
  checki "every job still settled" 3 (List.length outcomes);
  List.iter
    (fun o ->
      (match o.S.status with
      | S.Failed f ->
        check "quarantine is permanent" true (f.S.retryable = false);
        check "message names the quarantine" true
          (String.length f.S.message >= 11
          && String.sub f.S.message 0 11 = "quarantined")
      | S.Completed _ ->
        Alcotest.failf "%s completed despite max_migrations 0" o.S.job.Job.id);
      check "quarantined outcome keeps its trail" true
        ((placement o).S.migrations = [ "c2050#0" ]))
    outcomes

(* ---- hedged execution ---- *)

let test_hedge () =
  let launched0 = counter "fleet.hedge.launched" in
  let mismatches0 = counter "fleet.hedge.mismatches" in
  let config =
    {
      F.Config.default with
      pool = [ (None, 2) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 60.0;
      hedge_ms = Some 5.0;
    }
  in
  let fleet = F.create config in
  (* The straggle is a real backoff sleep (~60-120 ms), far past the
     5 ms hedge floor. *)
  let ticket =
    F.submit_blocking fleet
      (solve ~id:"hedge-t" ~inject_failures:1 ~retries:1 ())
  in
  let o = F.await fleet ticket in
  F.quiesce fleet;
  F.shutdown fleet;
  check "a duplicate was launched" true
    (counter "fleet.hedge.launched" - launched0 >= 1);
  checki "duplicate outcomes byte-equal" 0
    (counter "fleet.hedge.mismatches" - mismatches0);
  (match o.S.status with
  | S.Completed _ -> ()
  | S.Failed f -> Alcotest.failf "hedged job failed: %s" f.S.message);
  check "outcome carries the hedge flag" true (placement o).S.hedged

(* ---- circuit breakers ---- *)

let test_breaker_cycle () =
  let opened0 = counter "fleet.breaker.opened" in
  let closed0 = counter "fleet.breaker.closed" in
  let config =
    {
      F.Config.default with
      pool = [ (Some D.v100, 1) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 0.0;
      breakers = true;
    }
  in
  let fleet = F.create config in
  List.iter
    (fun j -> ignore (F.submit_blocking fleet j))
    (List.init 4 (fun i ->
         solve ~device:"v100"
           ~id:(Printf.sprintf "po-%d" i)
           ~inject_failures:99 ~retries:0 ()));
  F.quiesce fleet;
  check "poison opened the breaker" true
    (counter "fleet.breaker.opened" - opened0 >= 1);
  checks "breaker open in stats" "open" (List.hd (F.stats fleet)).F.breaker;
  (* Past the 250 ms cool-off, healthy traffic probes and closes it. *)
  Unix.sleepf 0.3;
  List.iter
    (fun j -> ignore (F.submit_blocking fleet j))
    (List.init 2 (fun i -> solve ~device:"v100" ~id:(Printf.sprintf "ok-%d" i) ()));
  F.quiesce fleet;
  F.shutdown fleet;
  check "probe closed the breaker" true
    (counter "fleet.breaker.closed" - closed0 >= 1);
  checks "breaker closed in stats" "closed"
    (List.hd (F.stats fleet)).F.breaker

(* ---- config validation ---- *)

let test_config_validation () =
  let ok c = F.Config.validate c = Ok () in
  let bad c = match F.Config.validate c with Error _ -> true | Ok () -> false in
  let d = F.Config.default in
  check "default validates" true (ok d);
  check "batch validates" true (ok (F.Config.batch ()));
  check "empty pool rejected" true (bad { d with pool = [] });
  check "non-positive count rejected" true
    (bad { d with pool = [ (Some D.v100, 0) ] });
  check "zero depth rejected" true (bad { d with max_queue_depth = 0 });
  check "negative depth rejected" true (bad { d with max_queue_depth = -3 });
  check "unbounded depth accepted" true
    (ok { d with max_queue_depth = F.Config.unbounded });
  check "negative backoff rejected" true (bad { d with backoff_ms = -1.0 });
  check "NaN backoff rejected" true (bad { d with backoff_ms = Float.nan });
  check "zero backoff stays legal" true (ok { d with backoff_ms = 0.0 });
  check "negative max_migrations rejected" true
    (bad { d with max_migrations = -1 });
  check "non-positive hedge rejected" true (bad { d with hedge_ms = Some 0.0 });
  check "create raises on a bad config" true
    (match F.create { d with max_queue_depth = 0 } with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---- seeded retry jitter ---- *)

let test_jitter () =
  let pause job attempt =
    Sched.Engine.backoff_pause_ms ~backoff_ms:2.0 job ~attempt
  in
  let a = solve ~id:"jit-a" () and b = solve ~id:"jit-b" () in
  (* Deterministic per (job, attempt): replaying a campaign reproduces
     every sleep. *)
  List.iter
    (fun attempt ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "attempt %d replays" attempt)
        (pause a attempt) (pause a attempt))
    [ 1; 2; 3; 4 ];
  (* Jittered inside [base, 2*base) of the exponential envelope. *)
  List.iter
    (fun attempt ->
      let base = 2.0 *. Float.of_int (1 lsl (attempt - 1)) in
      let p = pause a attempt in
      check
        (Printf.sprintf "attempt %d within the jitter envelope" attempt)
        true
        (p >= base && p < 2.0 *. base))
    [ 1; 2; 3; 4 ];
  (* Different jobs desynchronize: no retry stampede. *)
  check "sequences differ across jobs" true
    (List.exists (fun k -> pause a k <> pause b k) [ 1; 2; 3 ])

(* ---- journal ---- *)

let with_temp_journal f =
  let path = Filename.temp_file "test_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let j = Jn.create path in
      let a = solve ~id:"ja" () and b = solve ~id:"jb" () and c = solve ~id:"jc" () in
      Jn.intent j a;
      Jn.intent j b;
      Jn.intent j c;
      Jn.commit j ~job_id:"ja" ~line:"line-for-ja";
      Jn.reject j ~job_id:"jb";
      Jn.close j;
      let r = Jn.replay path in
      checki "one commit" 1 (List.length r.Jn.committed);
      checks "commit line verbatim" "line-for-ja"
        (List.assoc "ja" r.Jn.committed);
      checki "rejected intent is settled, unsettled one pending" 1
        (List.length r.Jn.pending);
      checks "pending is the unsettled job" "jc"
        (List.hd r.Jn.pending).Job.id;
      checki "nothing malformed" 0 r.Jn.malformed)

let test_journal_truncation () =
  with_temp_journal (fun path ->
      let j = Jn.create path in
      Jn.intent j (solve ~id:"t0" ());
      Jn.commit j ~job_id:"t0" ~line:"l0";
      Jn.close j;
      (* A crash tears the final append mid-line. *)
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      output_string oc "{\"j\":\"commit\",\"id\":\"to";
      close_out oc;
      let r = Jn.replay path in
      checki "torn tail counted" 1 r.Jn.malformed;
      checki "intact records survive" 1 (List.length r.Jn.committed);
      (* Reopening must terminate the torn tail so the next record is
         not glued onto (and lost with) it. *)
      let j2 = Jn.create path in
      Jn.intent j2 (solve ~id:"t1" ());
      Jn.commit j2 ~job_id:"t1" ~line:"l1";
      Jn.close j2;
      let r2 = Jn.replay path in
      checki "still exactly one malformed line" 1 r2.Jn.malformed;
      checki "post-reopen records parse" 2 (List.length r2.Jn.committed);
      checks "post-reopen commit intact" "l1" (List.assoc "t1" r2.Jn.committed))

let test_journal_missing_and_dedup () =
  let r = Jn.replay "/nonexistent/journal.jsonl" in
  check "missing file replays empty" true
    (r.Jn.committed = [] && r.Jn.pending = [] && r.Jn.malformed = 0);
  with_temp_journal (fun path ->
      let j = Jn.create path in
      Jn.intent j (solve ~id:"d0" ());
      Jn.commit j ~job_id:"d0" ~line:"first";
      Jn.commit j ~job_id:"d0" ~line:"second";
      Jn.close j;
      let r = Jn.replay path in
      checki "duplicate commits dedup" 1 (List.length r.Jn.committed);
      checks "first commit wins" "first" (List.assoc "d0" r.Jn.committed))

(* ---- hardened telemetry-line parser ---- *)

let test_telemetry_parser_hardened () =
  let raises_json_error s =
    match Harness.Obs_io.telemetry_line_of_string s with
    | _ -> false
    | exception Json.Error _ -> true
    | exception _ -> false
  in
  (* A torn tail-follow read in every flavor: truncated JSON, valid JSON
     missing fields, bad level names, wrong field types — all must be
     the one skip-and-count exception, never a crash. *)
  check "truncated JSON" true (raises_json_error "{\"type\":\"log\",\"ts");
  check "missing fields" true (raises_json_error "{\"type\":\"log\"}");
  check "unknown level" true
    (raises_json_error
       "{\"type\":\"log\",\"ts_ms\":1,\"level\":\"loud\",\"domain\":0,\"event\":\"e\",\"fields\":{}}");
  check "wrong type tag" true (raises_json_error "{\"type\":\"nope\"}");
  check "non-object" true (raises_json_error "42");
  (* And an intact line still parses. *)
  match
    Harness.Obs_io.telemetry_line_of_string
      "{\"type\":\"log\",\"ts_ms\":1.5,\"level\":\"warn\",\"domain\":0,\"event\":\"e\",\"fields\":{\"k\":\"v\"}}"
  with
  | Harness.Obs_io.Log_line r -> checks "intact line parses" "e" r.Obs.Log.event
  | Harness.Obs_io.Snapshot _ -> Alcotest.fail "parsed as a snapshot"

(* ---- concurrent backpressure ---- *)

let test_concurrent_backpressure () =
  let config =
    {
      F.Config.default with
      pool = [ (Some D.v100, 1) ];
      max_queue_depth = 2;
      (* Slow jobs keep the single queue full while the submitters
         hammer it. *)
      backoff_ms = 20.0;
    }
  in
  let fleet = F.create config in
  let domains = 4 and per_domain = 6 in
  let accepted = Atomic.make 0 and rejected = Atomic.make 0 in
  let submitter d () =
    for i = 0 to per_domain - 1 do
      let job =
        solve ~device:"v100"
          ~id:(Printf.sprintf "bp-%d-%d" d i)
          ~inject_failures:1 ~retries:1 ()
      in
      match F.submit fleet job with
      | Ok _ -> Atomic.incr accepted
      | Error (F.Queue_full { device_id; queue_depth } as r) ->
        Atomic.incr rejected;
        (* Every rejection is well-formed: it names the instance, the
           depth it saw, and renders a schema-stamped line. *)
        if device_id <> "v100#0" then
          Alcotest.failf "rejection names %s" device_id;
        if queue_depth <> config.F.Config.max_queue_depth then
          Alcotest.failf "rejection depth %d" queue_depth;
        let line = F.reject_to_json job r in
        checki "rejection line schema" S.schema_version
          (Json.get_int (Json.member "schema" line));
        checks "rejection line status" "rejected"
          (Json.get_string (Json.member "status" line))
      | Error F.Draining -> Alcotest.fail "Draining before shutdown"
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (submitter d)) in
  List.iter Domain.join ds;
  checki "every submission answered" (domains * per_domain)
    (Atomic.get accepted + Atomic.get rejected);
  check "backpressure rejected some" true (Atomic.get rejected >= 1);
  check "the fleet accepted some" true (Atomic.get accepted >= 1);
  F.quiesce fleet;
  (* After the drain the fleet must accept again — no lost wakeups. *)
  (match F.submit fleet (solve ~device:"v100" ~id:"bp-after" ()) with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "post-drain submission rejected: %s" (F.reject_message r));
  F.quiesce fleet;
  (* Blocking submitters racing a full fleet all get through. *)
  let blocked = Atomic.make 0 in
  let blocking d () =
    for i = 0 to per_domain - 1 do
      ignore
        (F.submit_blocking fleet
           (solve ~device:"v100" ~id:(Printf.sprintf "bl-%d-%d" d i) ()));
      Atomic.incr blocked
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (blocking d)) in
  List.iter Domain.join ds;
  checki "every blocking submission admitted" (domains * per_domain)
    (Atomic.get blocked);
  F.quiesce fleet;
  F.shutdown fleet;
  match F.submit fleet (solve ~device:"v100" ~id:"bp-late" ()) with
  | Error F.Draining -> ()
  | Ok _ | Error (F.Queue_full _) ->
    Alcotest.fail "submissions after shutdown must report Draining"

let () =
  Alcotest.run "resilience"
    [
      ( "chaos",
        [
          Alcotest.test_case "crash migrates stranded jobs" `Quick
            test_crash_migrates;
          Alcotest.test_case "hang is reclaimed by the supervisor" `Quick
            test_hang_reclaimed;
          Alcotest.test_case "brownout keeps executing" `Quick
            test_brownout_completes;
          Alcotest.test_case "quarantine after max migrations" `Quick
            test_quarantine;
        ] );
      ( "hedging",
        [ Alcotest.test_case "straggler gets a duplicate" `Quick test_hedge ]
      );
      ( "breakers",
        [ Alcotest.test_case "open, half-open, close" `Quick test_breaker_cycle ]
      );
      ( "config",
        [
          Alcotest.test_case "structured validation" `Quick
            test_config_validation;
        ] );
      ( "jitter",
        [ Alcotest.test_case "seeded backoff jitter" `Quick test_jitter ] );
      ( "journal",
        [
          Alcotest.test_case "intent/commit/reject round-trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "truncation tolerance and torn-tail reopen"
            `Quick test_journal_truncation;
          Alcotest.test_case "missing file and duplicate commits" `Quick
            test_journal_missing_and_dedup;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "parser never raises past Json.Error" `Quick
            test_telemetry_parser_hardened;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "concurrent submitters" `Quick
            test_concurrent_backpressure;
        ] );
    ]
