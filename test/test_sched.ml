(* Tests for the batch scheduler: deterministic mixed batches, retry and
   degradation paths, cooperative timeouts, and the versioned JSON-lines
   outcome schema. *)

module P = Multidouble.Precision
module Job = Sched.Job
module S = Sched.Scheduler
module Report = Harness.Report
module Json = Harness.Json

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let qr ?complex ?execute ?retries ?inject_failures ?timeout_ms ~id ~dim ~tile
    () =
  Job.make ?complex ?execute ?retries ?inject_failures ?timeout_ms ~id
    ~kind:Job.Qr ~device:"v100" ~prec:P.DD ~dim ~tile ()

let completed o =
  match o.S.status with
  | S.Completed r -> r
  | S.Failed f -> Alcotest.failf "%s failed: %s" o.S.job.Job.id f.S.message

let failed o =
  match o.S.status with
  | S.Failed f -> f
  | S.Completed _ -> Alcotest.failf "%s unexpectedly completed" o.S.job.Job.id

(* ---- deterministic mixed batch ---- *)

let test_mixed_batch () =
  let jobs =
    [
      qr ~id:"plan-qr" ~dim:256 ~tile:32 ();
      Job.make ~id:"plan-bs" ~kind:Job.Backsub ~device:"p100" ~prec:P.QD
        ~dim:512 ~tile:64 ();
      Job.make ~id:"plan-solve" ~kind:Job.Solve ~device:"rtx2080" ~prec:P.OD
        ~dim:128 ~tile:32 ();
      qr ~id:"exec-qr" ~complex:true ~execute:true ~dim:32 ~tile:8 ();
      Job.make ~id:"exec-bs" ~kind:Job.Backsub ~device:"v100" ~prec:P.QD
        ~execute:true ~dim:32 ~tile:8 ();
    ]
  in
  (* One worker: jobs are claimed in submission order, so completion
     order is fully deterministic. *)
  let outcomes = S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ()) jobs in
  checki "one outcome per job" (List.length jobs) (List.length outcomes);
  List.iteri
    (fun i o ->
      checki "submission order preserved" i o.S.index;
      checki "sequential completion order" i o.S.order;
      check "first attempt succeeded" true (o.S.attempts = 1);
      check "elapsed accounted" true (o.S.elapsed_ms >= 0.0);
      checki "one attempt timed" 1 (List.length o.S.timing.S.attempt_ms);
      check "queue wait non-negative" true
        (o.S.timing.S.queue_wait_ms >= 0.0);
      check "no backoff slept" true (o.S.timing.S.backoff_ms = 0.0);
      check "attempt times non-negative" true
        (List.for_all (fun ms -> ms >= 0.0) o.S.timing.S.attempt_ms);
      let r = completed o in
      let job = List.nth jobs i in
      check "plan jobs carry no residual, executed jobs do" true
        (Option.is_some r.Report.residual = job.Job.execute);
      if job.Job.execute then
        check "executed residual ok" true
          (match r.Report.residual with Some v -> v.Report.ok | None -> false))
    outcomes;
  (* The solve job's report decomposes into the QR and BS parts. *)
  let solve = List.nth outcomes 2 in
  let r = completed solve in
  check "solve has both parts" true
    (Option.is_some (Report.part_opt r Harness.Runners.qr_part)
    && Option.is_some (Report.part_opt r Harness.Runners.bs_part))

let test_parallel_batch () =
  (* Four workers over eight mixed device x precision jobs on the shared
     pool: every job completes and the completion ranks are a
     permutation. *)
  let jobs =
    List.concat_map
      (fun device ->
        List.map
          (fun prec ->
            Job.make
              ~id:(Printf.sprintf "%s-%s" device (P.label prec))
              ~kind:Job.Qr ~device ~prec ~dim:128 ~tile:32 ())
          [ P.DD; P.QD ])
      [ "c2050"; "k20c"; "p100"; "v100" ]
  in
  let outcomes = S.run (S.Config.batch ~parallel:4 ~backoff_ms:0.0 ()) jobs in
  checki "all jobs settled" 8 (List.length outcomes);
  List.iteri (fun i o -> checki "in submission order" i o.S.index) outcomes;
  let orders = List.sort compare (List.map (fun o -> o.S.order) outcomes) in
  Alcotest.(check (list int)) "orders are a permutation" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    orders;
  List.iter (fun o -> ignore (completed o)) outcomes

(* ---- retry, degradation, validation, timeout ---- *)

let test_retry_recovers () =
  let job =
    qr ~id:"flaky" ~dim:128 ~tile:32 ~retries:2 ~inject_failures:1 ()
  in
  match S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ()) [ job ] with
  | [ o ] ->
    ignore (completed o);
    checki "succeeded on the second attempt" 2 o.S.attempts;
    checki "every attempt timed" 2 (List.length o.S.timing.S.attempt_ms)
  | _ -> Alcotest.fail "expected one outcome"

let test_backoff_recorded () =
  (* One injected failure with a real backoff base: the retry sleeps
     once, and the slept time lands in the timing record. *)
  let job =
    qr ~id:"backoff" ~dim:64 ~tile:32 ~retries:2 ~inject_failures:1 ()
  in
  match S.run (S.Config.batch ~parallel:1 ~backoff_ms:2.0 ()) [ job ] with
  | [ o ] ->
    ignore (completed o);
    checki "two attempts" 2 o.S.attempts;
    check "backoff slept" true (o.S.timing.S.backoff_ms >= 2.0);
    check "elapsed covers the sleep" true
      (o.S.elapsed_ms >= o.S.timing.S.backoff_ms)
  | _ -> Alcotest.fail "expected one outcome"

let test_poisoned_degrades () =
  (* A job that fails every attempt becomes a structured error record;
     the rest of the batch still completes. *)
  let jobs =
    [
      qr ~id:"before" ~dim:128 ~tile:32 ();
      qr ~id:"poisoned" ~dim:128 ~tile:32 ~retries:2 ~inject_failures:99 ();
      qr ~id:"after" ~dim:128 ~tile:32 ();
    ]
  in
  let outcomes = S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ()) jobs in
  checki "batch continued" 3 (List.length outcomes);
  let o = List.nth outcomes 1 in
  let f = failed o in
  Alcotest.(check string) "structured message" "injected failure" f.S.message;
  check "not a timeout" false f.S.timed_out;
  checki "all attempts consumed" 3 o.S.attempts;
  ignore (completed (List.nth outcomes 0));
  ignore (completed (List.nth outcomes 2))

let test_validation_rejects () =
  let bad = qr ~id:"bad-tile" ~dim:100 ~tile:32 () in
  match S.run (S.Config.batch ~parallel:1 ~backoff_ms:1.0 ()) [ bad ] with
  | [ o ] ->
    let f = failed o in
    checki "never attempted" 0 o.S.attempts;
    check "no attempt timed" true (o.S.timing.S.attempt_ms = []);
    check "mentions the tile" true
      (String.length f.S.message > 0 && not f.S.timed_out)
  | _ -> Alcotest.fail "expected one outcome"

let test_timeout_is_cooperative () =
  (* First attempt fails (injected) almost instantly; the 5ms backoff
     then overruns the 1ms budget, so the deadline check fires before
     the retry and the job degrades to a timed-out failure. *)
  let job =
    qr ~id:"slowpoke" ~dim:128 ~tile:32 ~retries:5 ~inject_failures:99
      ~timeout_ms:1.0 ()
  in
  match S.run (S.Config.batch ~parallel:1 ~backoff_ms:5.0 ()) [ job ] with
  | [ o ] ->
    let f = failed o in
    check "timed out" true f.S.timed_out;
    check "gave up before exhausting retries" true (o.S.attempts < 6);
    checki "attempts and attempt times agree" o.S.attempts
      (List.length o.S.timing.S.attempt_ms)
  | _ -> Alcotest.fail "expected one outcome"

(* ---- serialization ---- *)

let roundtrip o =
  let line = Json.to_string (S.outcome_to_json o) in
  let o' = S.outcome_of_json (Json.of_string line) in
  check "outcome round-trips" true (o = o')

let test_outcome_roundtrip () =
  let jobs =
    [
      qr ~id:"ok" ~dim:128 ~tile:32 ();
      qr ~id:"exec" ~execute:true ~dim:32 ~tile:8 ();
      qr ~id:"doomed" ~dim:128 ~tile:32 ~retries:1 ~inject_failures:99 ();
      qr ~id:"invalid" ~dim:100 ~tile:32 ();
    ]
  in
  let outcomes = S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ()) jobs in
  List.iter roundtrip outcomes;
  (* A wrong schema version is rejected. *)
  let doctored =
    match S.outcome_to_json (List.hd outcomes) with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", Json.Int 999) | kv -> kv)
           fields)
    | _ -> Alcotest.fail "outcome is not an object"
  in
  match S.outcome_of_json doctored with
  | exception Json.Error _ -> ()
  | _ -> Alcotest.fail "wrong schema version accepted"

let test_jsonl_file_roundtrip () =
  let jobs =
    [
      qr ~id:"a" ~dim:128 ~tile:32 ();
      qr ~id:"b" ~dim:64 ~tile:32 ~retries:0 ~inject_failures:99 ();
    ]
  in
  let outcomes = S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ()) jobs in
  let path = Filename.temp_file "lsq_batch" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      S.write_jsonl oc outcomes;
      close_out oc;
      let ic = open_in path in
      let back = S.read_jsonl ic in
      close_in ic;
      check "file round-trips the batch" true (back = outcomes))

let test_job_json_defaults () =
  let j =
    Job.of_json
      (Json.of_string
         {|{"id": "mini", "kind": "qr", "device": "v100", "prec": "2d",
            "dim": 64, "tile": 16}|})
  in
  check "defaults applied" true
    ((not j.Job.complex) && (not j.Job.execute) && j.Job.rows = None
    && j.Job.timeout_ms = None && j.Job.retries = 1
    && j.Job.inject_failures = 0);
  check "job round-trips" true (Job.of_json (Job.to_json j) = j)

(* ---- sweeps ---- *)

let test_sweeps_validate () =
  List.iter
    (fun name ->
      let jobs = Sched.Sweep.jobs name in
      check (name ^ " non-empty") true (jobs <> []);
      let ids = List.map (fun j -> j.Job.id) jobs in
      checki (name ^ " ids unique")
        (List.length ids)
        (List.length (List.sort_uniq compare ids));
      List.iter
        (fun j ->
          match Job.validate j with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s invalid: %s" name j.Job.id m)
        jobs)
    Sched.Sweep.names;
  checki "table4 covers 3 devices x 4 precisions" 12
    (List.length (Sched.Sweep.jobs "table4"));
  match Sched.Sweep.jobs "table99" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown sweep accepted"

let () =
  Alcotest.run "sched"
    [
      ( "batch",
        [
          Alcotest.test_case "mixed plan/execute" `Quick test_mixed_batch;
          Alcotest.test_case "parallel workers" `Quick test_parallel_batch;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "backoff recorded" `Quick test_backoff_recorded;
          Alcotest.test_case "poisoned job degrades" `Quick
            test_poisoned_degrades;
          Alcotest.test_case "validation rejects" `Quick
            test_validation_rejects;
          Alcotest.test_case "cooperative timeout" `Quick
            test_timeout_is_cooperative;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "outcome round-trip" `Quick
            test_outcome_roundtrip;
          Alcotest.test_case "jsonl file round-trip" `Quick
            test_jsonl_file_roundtrip;
          Alcotest.test_case "job defaults" `Quick test_job_json_defaults;
        ] );
      ( "sweeps",
        [ Alcotest.test_case "all validate" `Quick test_sweeps_validate ] );
    ]
