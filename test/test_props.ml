(* Property-based tests (qcheck, registered as alcotest cases): algebraic
   laws of the multiple double arithmetic, the normalization invariant of
   the expansion representation, and structural invariants of the linear
   algebra layer, at every precision. *)

open Multidouble
open Mdlinalg

let to_alco ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

module Props (S : Md_sig.S) = struct
  open QCheck2

  (* Generator of full-precision values: a random limb at every scale,
     with a random binary exponent. *)
  let gen : S.t Gen.t =
    let open Gen in
    let* limbs =
      array_size (return S.limbs) (float_range (-1.0) 1.0)
    in
    let* e = int_range (-24) 24 in
    let l =
      Array.mapi
        (fun i x -> x *. (2.0 ** ((-53.0 *. float_of_int i) +. float_of_int e)))
        limbs
    in
    return (S.of_limbs l)

  let gen_nonzero =
    Gen.map
      (fun x ->
        if S.is_zero x || Float.abs (S.to_float x) < 1e-12 then S.one else x)
      gen

  let close ?(tol = 64.0) a b =
    let d = S.abs (S.sub a b) in
    let m = S.max (S.abs a) (S.abs b) in
    S.compare d (S.mul_float m (tol *. S.eps)) <= 0

  (* The expansion invariant: limbs sorted by decreasing magnitude and
     non-overlapping (each limb below the ulp of its predecessor). *)
  let normalized x =
    let l = S.to_limbs x in
    let ok = ref true in
    for i = 0 to S.limbs - 2 do
      if l.(i) <> 0.0 then begin
        if Float.abs l.(i + 1) > 0x1p-51 *. Float.abs l.(i) then ok := false
      end
      else if l.(i + 1) <> 0.0 then ok := false
    done;
    !ok

  let suite name =
    ( name ^ " properties",
      [
        to_alco "add commutative" (Gen.pair gen gen) (fun (a, b) ->
            S.equal (S.add a b) (S.add b a));
        to_alco "mul commutative" (Gen.pair gen gen) (fun (a, b) ->
            S.equal (S.mul a b) (S.mul b a));
        to_alco "add associative (approx)" (Gen.triple gen gen gen)
          (fun (a, b, c) ->
            close (S.add (S.add a b) c) (S.add a (S.add b c)));
        to_alco "mul associative (approx)" (Gen.triple gen gen gen)
          (fun (a, b, c) ->
            close ~tol:256.0 (S.mul (S.mul a b) c) (S.mul a (S.mul b c)));
        to_alco "distributive (approx)" (Gen.triple gen gen gen)
          (fun (a, b, c) ->
            close ~tol:256.0
              (S.mul a (S.add b c))
              (S.add (S.mul a b) (S.mul a c)));
        to_alco "neg involution" gen (fun a -> S.equal (S.neg (S.neg a)) a);
        to_alco "sub is add neg" (Gen.pair gen gen) (fun (a, b) ->
            S.equal (S.sub a b) (S.add a (S.neg b)));
        to_alco "div inverts mul" (Gen.pair gen gen_nonzero) (fun (a, b) ->
            close ~tol:256.0 (S.div (S.mul a b) b) a);
        to_alco "sqrt squares back" gen (fun a ->
            let a = S.abs a in
            let r = S.sqrt a in
            close ~tol:256.0 (S.mul r r) a);
        to_alco "abs nonnegative" gen (fun a -> S.sign (S.abs a) >= 0);
        to_alco "triangle inequality" (Gen.pair gen gen) (fun (a, b) ->
            (* |a+b| <= |a| + |b| up to a few ulps of the bigger side;
               the slack must be added as a separate term because
               1.0 +. 64 eps rounds to 1.0 in plain double. *)
            let rhs = S.add (S.abs a) (S.abs b) in
            let slack = S.mul_float (S.add_float rhs 1.0) (64.0 *. S.eps) in
            S.compare (S.sub (S.abs (S.add a b)) rhs) slack <= 0);
        to_alco "mul_pwr2 exact" gen (fun a ->
            S.equal (S.mul_pwr2 a 4.0) (S.mul a (S.of_int 4)));
        to_alco "compare antisymmetric" (Gen.pair gen gen) (fun (a, b) ->
            S.compare a b = -S.compare b a);
        to_alco "compare transitive" (Gen.triple gen gen gen)
          (fun (a, b, c) ->
            let l = List.sort S.compare [ a; b; c ] in
            match l with
            | [ x; y; z ] -> S.compare x y <= 0 && S.compare y z <= 0
            | _ -> false);
        to_alco "compare consistent with sub" (Gen.pair gen gen)
          (fun (a, b) ->
            let c = S.compare a b and s = S.sign (S.sub a b) in
            (c > 0) = (s > 0) && (c < 0) = (s < 0));
        to_alco "floor below" gen (fun a ->
            let f = S.floor a in
            S.compare f a <= 0 && S.compare a (S.add f S.one) < 0);
        to_alco "results normalized" (Gen.pair gen gen) (fun (a, b) ->
            normalized (S.add a b) && normalized (S.mul a b)
            && normalized (S.sub a b));
        to_alco ~count:50 "string roundtrip" gen (fun a ->
            close ~tol:64.0 (S.of_string (S.to_string a)) a);
        to_alco ~count:50 "truncated printing"
          (Gen.pair gen (Gen.int_range 3 (S.limbs * 16)))
          (fun (a, digits) ->
            (* printing with d digits then reparsing keeps ~d digits *)
            let b = S.of_string (S.to_string ~digits a) in
            let d = S.abs (S.sub a b) in
            let bound =
              S.mul_float
                (S.add (S.abs a) (S.of_float 1e-300))
                (10.0 ** float_of_int (2 - digits))
            in
            S.compare d bound <= 0);
        to_alco "min/max bracket" (Gen.pair gen gen) (fun (a, b) ->
            S.compare (S.min a b) (S.max a b) <= 0
            && (S.equal (S.min a b) a || S.equal (S.min a b) b));
      ] )
end

module Pd = Props (Float_double)
module Pdd = Props (Double_double)
module Pqd = Props (Quad_double)
module Pod = Props (Octo_double)

(* ------------------------------------------------------------------ *)
(* Renormalization invariants                                          *)
(* ------------------------------------------------------------------ *)

(* The fault plane's renorm validators lean on exactly these: any raw
   limb sequence compresses to decreasing, non-overlapping limbs with
   the zeros trailing, renormalization is idempotent bit for bit, and
   the represented value survives up to the dropped tail. *)
module Renorm_props (S : Md_sig.S) = struct
  open QCheck2

  let m = S.limbs

  (* Raw overlapping limb ladders: magnitudes spaced by ~45 bits (closer
     than a limb's 53, so adjacent limbs overlap), deliberately NOT in
     normal form. *)
  let gen_raw : float array Gen.t =
    let open Gen in
    let* xs = array_size (return m) (float_range (-1.0) 1.0) in
    let* e = int_range (-24) 24 in
    return
      (Array.mapi
         (fun i x ->
           x *. (2.0 ** ((-45.0 *. float_of_int i) +. float_of_int e)))
         xs)

  (* The expansion invariant on a raw limb array: decreasing and
     non-overlapping (2^-49 leaves room for a couple of carry bits),
     zeros only trailing, everything finite. *)
  let normalized_arr l =
    let ok = ref true in
    for i = 0 to Array.length l - 2 do
      if l.(i) = 0.0 then begin
        if l.(i + 1) <> 0.0 then ok := false
      end
      else if Float.abs l.(i + 1) > 0x1p-49 *. Float.abs l.(i) then
        ok := false
    done;
    Array.for_all (fun x -> not (Float.is_nan x) && Float.is_finite x) l
    && !ok

  let od_sum l =
    Array.fold_left
      (fun acc x -> Octo_double.add acc (Octo_double.of_float x))
      Octo_double.zero l

  let suite name =
    ( name ^ " renorm properties",
      [
        to_alco ~count:200 "renormalize normalizes" gen_raw (fun raw ->
            normalized_arr (Renorm.renormalize ~m (Array.copy raw)));
        to_alco ~count:200 "renormalize idempotent on normal forms" gen_raw
          (fun raw ->
            (* One pass over a heavily overlapping ladder may still move
               a carry; the result of a second pass is a bit-identical
               fixed point. *)
            let settled =
              Renorm.renormalize ~m
                (Renorm.renormalize ~m (Array.copy raw))
            in
            Array.for_all2
              (fun a b ->
                Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
              (Renorm.renormalize ~m (Array.copy settled))
              settled);
        to_alco ~count:200 "renormalize preserves the value" gen_raw
          (fun raw ->
            let out = Renorm.renormalize ~m (Array.copy raw) in
            let a = od_sum raw and b = od_sum out in
            let d = Octo_double.abs (Octo_double.sub a b) in
            let bound =
              Octo_double.mul_float
                (Octo_double.add (Octo_double.abs a)
                   (Octo_double.of_float 1e-300))
                (2.0 ** (-50.0 *. float_of_int (m - 1)))
            in
            Octo_double.compare d bound <= 0);
        to_alco ~count:200 "of_limbs normalizes" gen_raw (fun raw ->
            normalized_arr (S.to_limbs (S.of_limbs raw)));
      ] )
end

module Rdd = Renorm_props (Double_double)
module Rqd = Renorm_props (Quad_double)
module Rod = Renorm_props (Octo_double)

(* ------------------------------------------------------------------ *)
(* Flat kernel plane: bit-identity with the boxed registry path         *)
(* ------------------------------------------------------------------ *)

(* Every [Nd_flat] kernel operation, on random staggered planes, must
   agree with the boxed module limb for limb (via Int64.bits_of_float) —
   the contract that lets the solvers dispatch to the flat plane on a
   pure capability check.  Instantiated below for every precision in
   [Precision.all] that has a plan (all multiple doubles, including the
   Expansion-generated octo double). *)
module Flat_props (S : Md_sig.S) = struct
  open QCheck2

  let m = S.limbs

  let fp =
    match Nd_flat.plan ~limbs:m with
    | Some p -> p
    | None -> Alcotest.failf "no flat plan for %d limbs" m

  (* Full-precision staggered values: a random limb at every scale, with
     a random binary exponent (the generator of [Props]). *)
  let gen_val : S.t Gen.t =
    let open Gen in
    let* limbs = array_size (return m) (float_range (-1.0) 1.0) in
    let* e = int_range (-24) 24 in
    let l =
      Array.mapi
        (fun i x -> x *. (2.0 ** ((-53.0 *. float_of_int i) +. float_of_int e)))
        limbs
    in
    return (S.of_limbs l)

  let bits_eq (a : float array) (b : float array) =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y ->
           Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         a b

  (* Stage boxed values into limb planes (the [Staggered] layout). *)
  let stage (vals : S.t array) =
    let n = Array.length vals in
    let p = Nd_flat.make_planes ~limbs:m n in
    Array.iteri
      (fun i v ->
        let l = S.to_limbs v in
        for pl = 0 to m - 1 do
          Nd_flat.set p pl i l.(pl)
        done)
      vals;
    p

  (* Read the accumulator back out through [store]. *)
  let acc_limbs ctx =
    let out = Nd_flat.make_planes ~limbs:m 1 in
    fp.Nd_flat.store ctx out 0;
    Array.init m (fun pl -> Nd_flat.get out pl 0)

  let check_op name boxed flat_limbs =
    if not (bits_eq (S.to_limbs boxed) flat_limbs) then
      Test.fail_reportf "%s: flat limbs differ from boxed %s" name
        (S.to_string boxed)
    else true

  let suite name =
    let { Nd_flat.make_ctx; clear; load; store = _; add; mul_set; mul_add;
          sub_from; limbs = _ } = fp
    in
    ( name ^ " flat bit-identity",
      [
        to_alco ~count:200 "load/store roundtrip" gen_val (fun x ->
            let ctx = make_ctx () in
            load ctx (stage [| x |]) 0;
            bits_eq (S.to_limbs x) (acc_limbs ctx));
        to_alco ~count:200 "add" (Gen.pair gen_val gen_val) (fun (a, b) ->
            let ctx = make_ctx () in
            load ctx (stage [| a |]) 0;
            add ctx (stage [| b |]) 0;
            check_op "add" (S.add a b) (acc_limbs ctx));
        to_alco ~count:200 "mul_set" (Gen.pair gen_val gen_val)
          (fun (a, b) ->
            let ctx = make_ctx () in
            mul_set ctx (stage [| a |]) 0 (stage [| b |]) 0;
            check_op "mul_set" (S.mul a b) (acc_limbs ctx));
        to_alco ~count:200 "mul_add" (Gen.triple gen_val gen_val gen_val)
          (fun (c, a, b) ->
            let ctx = make_ctx () in
            load ctx (stage [| c |]) 0;
            mul_add ctx (stage [| a |]) 0 (stage [| b |]) 0;
            check_op "mul_add" (S.add c (S.mul a b)) (acc_limbs ctx));
        to_alco ~count:200 "sub_from" (Gen.pair gen_val gen_val)
          (fun (x, c) ->
            let ctx = make_ctx () in
            load ctx (stage [| c |]) 0;
            let xs = stage [| x |] in
            sub_from ctx xs 0;
            let got = Array.init m (fun pl -> Nd_flat.get xs pl 0) in
            check_op "sub_from" (S.sub x c) got);
        to_alco ~count:100 "dot chain"
          (Gen.pair
             (Gen.array_size (Gen.int_range 1 17) gen_val)
             (Gen.array_size (Gen.int_range 1 17) gen_val))
          (fun (xs, ys) ->
            (* Accumulation chains grow limb occupancy the way the real
               kernels do; run the exact mul_add sequence of the matmul
               body against its boxed form. *)
            let n = min (Array.length xs) (Array.length ys) in
            let xs = Array.sub xs 0 n and ys = Array.sub ys 0 n in
            let xp = stage xs and yp = stage ys in
            let ctx = make_ctx () in
            clear ctx;
            let boxed = ref S.zero in
            for i = 0 to n - 1 do
              mul_add ctx xp i yp i;
              boxed := S.add !boxed (S.mul xs.(i) ys.(i))
            done;
            check_op "dot chain" !boxed (acc_limbs ctx));
      ] )
end

(* The boxed reference comes from the registry — the same dispatch the
   production stack uses. *)
let flat_suites =
  List.filter_map
    (fun tag ->
      let limbs = Precision.limbs tag in
      if Nd_flat.supported limbs then
        let module S = (val Registry.module_of_tag tag) in
        let module P = Flat_props (S) in
        Some (P.suite (Precision.name tag))
      else None)
    Precision.all

(* The widths above resolve to the specialized engines (m = 2, 4, 8);
   these pin the generic replay engine against the Expansion functor at
   widths with no hand-written kernel — the QDlib neighbours of the
   specialized sizes (m = 3, 6) and far past them (m = 16). *)
module Sexa_double = Expansion.Make (struct
  let limbs = 6
  let name = "sexa double"
end)

let replay_suites =
  let module P3 = Flat_props (Triple_double) in
  let module P6 = Flat_props (Sexa_double) in
  let module P16 = Flat_props (Hexa_double) in
  [
    P3.suite "triple double (replay)";
    P6.suite "sexa double (replay)";
    P16.suite "hexa double (replay)";
  ]

let flat_gate_suite =
  ( "flat plan gating",
    [
      Alcotest.test_case "plain double has no plan" `Quick (fun () ->
          Alcotest.(check bool) "limbs=1" true (Nd_flat.plan ~limbs:1 = None));
      Alcotest.test_case "every multiple double has a plan" `Quick (fun () ->
          List.iter
            (fun tag ->
              let limbs = Precision.limbs tag in
              if limbs > 1 then
                match Nd_flat.plan ~limbs with
                | Some p ->
                    Alcotest.(check int)
                      (Precision.name tag ^ " plan limbs")
                      limbs p.Nd_flat.limbs
                | None ->
                    Alcotest.failf "no plan for %s" (Precision.name tag))
            Precision.all);
    ] )

(* ------------------------------------------------------------------ *)
(* Linear algebra invariants                                           *)
(* ------------------------------------------------------------------ *)

module Linalg_props (K : Scalar.S) = struct
  open QCheck2
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Qr = Host_qr.Make (K)
  module Tri = Host_tri.Make (K)
  module Lu = Lu.Make (K)

  let gen_scalar : K.t Gen.t =
    Gen.map K.of_float (Gen.float_range (-1.0) 1.0)

  let gen_vec n = Gen.array_size (Gen.return n) gen_scalar

  let gen_mat r c =
    Gen.map
      (fun a -> M.init r c (fun i j -> a.((i * c) + j)))
      (Gen.array_size (Gen.return (r * c)) gen_scalar)

  let rclose a b tol =
    K.R.compare a (K.R.of_float (tol *. K.R.eps)) <= 0 |> fun _ ->
    K.R.compare (K.R.sub a b) (K.R.of_float (tol *. K.R.eps)) <= 0

  let _ = rclose

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let suite name =
    ( name ^ " linalg properties",
      [
        to_alco ~count:40 "dot conjugate symmetry" (Gen.pair (gen_vec 9) (gen_vec 9))
          (fun (a, b) ->
            K.equal (V.dot a b) (K.conj (V.dot b a)));
        to_alco ~count:40 "norm2 nonnegative" (gen_vec 11) (fun v ->
            K.R.sign (V.norm2 v) >= 0);
        to_alco ~count:40 "matvec linear" (Gen.triple (gen_mat 6 5) (gen_vec 5) (gen_vec 5))
          (fun (m, x, y) ->
            let lhs = M.matvec m (V.add x y) in
            let rhs = V.add (M.matvec m x) (M.matvec m y) in
            small (V.norm (V.sub lhs rhs)));
        to_alco ~count:20 "matmul associative"
          (Gen.triple (gen_mat 4 5) (gen_mat 5 3) (gen_mat 3 6))
          (fun (a, b, c) ->
            small
              (M.rel_distance
                 (M.matmul (M.matmul a b) c)
                 (M.matmul a (M.matmul b c))));
        to_alco ~count:40 "adjoint involution" (gen_mat 5 7) (fun m ->
            M.equal (M.adjoint (M.adjoint m)) m);
        to_alco ~count:20 "qr reconstructs" (gen_mat 8 6) (fun a ->
            let q, r = Qr.factor a in
            small (Qr.factorization_residual a q r)
            && small (Qr.orthogonality_defect q));
        to_alco ~count:20 "lu solve residual" (gen_mat 6 6) (fun a ->
            try
              let x = V.init 6 (fun i -> K.of_float (float_of_int (i + 1))) in
              let b = M.matvec a x in
              let x' = Lu.solve a b in
              K.R.compare
                (V.norm (V.sub x x'))
                (K.R.mul_float (V.norm x) (1e10 *. K.R.eps))
              <= 0
            with Lu.Singular _ -> true);
        to_alco ~count:20 "upper inverse" (gen_mat 6 6) (fun a ->
            try
              let lu, _ = Lu.factor a in
              let u = Lu.upper_of lu in
              let inv = Tri.upper_inverse u in
              small (M.rel_distance (M.identity 6) (M.matmul u inv))
            with Lu.Singular _ -> true);
      ] )
end

module Ld = Linalg_props (Scalar.D)
module Ldd = Linalg_props (Scalar.Dd)
module Lqd = Linalg_props (Scalar.Qd)
module Lzdd = Linalg_props (Scalar.Zdd)

(* ------------------------------------------------------------------ *)
(* Elementary function laws                                            *)
(* ------------------------------------------------------------------ *)

module Func_props (S : Md_sig.S) = struct
  open QCheck2
  module F = Md_funcs.Make (S)

  let gen_small = Gen.map S.of_float (Gen.float_range (-5.0) 5.0)
  let gen_pos = Gen.map (fun x -> S.of_float (Float.abs x +. 0.01)) (Gen.float_range 0.0 30.0)

  let close ?(tol = 1e4) a b =
    let d = S.abs (S.sub a b) in
    let m = S.add (S.max (S.abs a) (S.abs b)) S.one in
    S.compare d (S.mul_float m (tol *. S.eps)) <= 0

  let suite name =
    ( name ^ " function laws",
      [
        to_alco ~count:50 "exp additive" (Gen.pair gen_small gen_small)
          (fun (a, b) ->
            close (F.exp (S.add a b)) (S.mul (F.exp a) (F.exp b)));
        to_alco ~count:50 "log multiplicative" (Gen.pair gen_pos gen_pos)
          (fun (a, b) ->
            close (F.log (S.mul a b)) (S.add (F.log a) (F.log b)));
        to_alco ~count:50 "exp/log inverse" gen_small (fun a ->
            close (F.log (F.exp a)) a);
        to_alco ~count:50 "pythagoras" gen_small (fun a ->
            let s, c = F.sin_cos a in
            close (S.add (S.mul s s) (S.mul c c)) S.one);
        to_alco ~count:50 "double angle" gen_small (fun a ->
            let s, c = F.sin_cos a in
            let s2, _ = F.sin_cos (S.mul_pwr2 a 2.0) in
            close s2 (S.mul_pwr2 (S.mul s c) 2.0));
        to_alco ~count:50 "atan odd" gen_small (fun a ->
            S.equal (F.atan (S.neg a)) (S.neg (F.atan a)));
        to_alco ~count:50 "cosh >= 1" gen_small (fun a ->
            S.compare (F.cosh a) (S.add_float S.one (-1e-15)) >= 0);
        to_alco ~count:30 "nroot inverts npow" gen_pos (fun a ->
            close ~tol:1e6 (F.nroot (F.npow a 3) 3) a);
      ] )
end

module Fpd = Func_props (Double_double)
module Fpq = Func_props (Quad_double)

(* ------------------------------------------------------------------ *)
(* Power series ring laws                                              *)
(* ------------------------------------------------------------------ *)

module Series_props (K : Scalar.S) = struct
  open QCheck2
  module S = Mdseries.Series.Make (K)

  let deg = 6

  let gen_series : S.t Gen.t =
    Gen.map
      (fun a -> S.of_coeffs (Array.map K.of_float a))
      (Gen.array_size (Gen.return (deg + 1)) (Gen.float_range (-1.0) 1.0))

  let close a b =
    K.R.compare (S.distance a b) (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let suite name =
    ( name ^ " series laws",
      [
        to_alco ~count:50 "mul commutative" (Gen.pair gen_series gen_series)
          (fun (a, b) -> S.equal (S.mul a b) (S.mul b a));
        to_alco ~count:50 "mul associative"
          (Gen.triple gen_series gen_series gen_series)
          (fun (a, b, c) ->
            close (S.mul (S.mul a b) c) (S.mul a (S.mul b c)));
        to_alco ~count:50 "distributive"
          (Gen.triple gen_series gen_series gen_series)
          (fun (a, b, c) ->
            close (S.mul a (S.add b c)) (S.add (S.mul a b) (S.mul a c)));
        to_alco ~count:50 "leibniz" (Gen.pair gen_series gen_series)
          (fun (a, b) ->
            let lhs = S.deriv (S.mul a b) in
            let rhs = S.add (S.mul (S.deriv a) b) (S.mul a (S.deriv b)) in
            (* ignore the top coefficient, truncated by deriv *)
            let cut (s : S.t) =
              let s = Array.copy s in
              s.(deg) <- K.zero;
              s
            in
            close (cut lhs) (cut rhs));
        to_alco ~count:50 "eval ring morphism"
          (Gen.pair gen_series gen_series)
          (fun (a, b) ->
            let x = K.of_float 0.5 in
            let lhs = S.eval (S.mul a b) x in
            (* truncation: compare only up to the truncated tail bound *)
            let rhs = K.mul (S.eval a x) (S.eval b x) in
            let d = K.abs (K.sub lhs rhs) in
            (* products of degree-6 series truncate terms >= t^7: at
               t = 1/2 the dropped tail is bounded by ~ 7 * 2^-7 *)
            K.R.compare d (K.R.of_float 1.0) <= 0);
      ] )
end

module Spdd = Series_props (Scalar.Dd)
module Spz = Series_props (Scalar.Zdd)

(* The refinement ladder's precision seams: [Refine.Make_scalar]'s
   promote / demote are per-part limb-plane copies — promotion embeds
   the low precision exactly (zero-padding), demotion truncates within
   one ulp of the low precision.  The iterative solver engines climb
   D -> DD -> QD -> OD through exactly these seams, so the laws hold
   for every adjacent and skipping pair, real and complex. *)
module Refine_props (KL : Scalar.S) (KH : Scalar.S) = struct
  open QCheck2
  module Rf = Lsq_core.Refine.Make_scalar (KL) (KH)

  (* Full-width values: differences of uniform randoms fill the limbs;
     a random binary exponent spreads the scales. *)
  let gen_of (type s) (module K : Scalar.S with type t = s) : s Gen.t =
    let open Gen in
    let* seed = int_range 1 1_000_000 in
    let* e = int_range (-12) 12 in
    let rng = Dompool.Prng.create seed in
    let x = K.sub (K.random rng) (K.random rng) in
    return (K.mul_float x (2.0 ** float_of_int e))

  let gen_lo = gen_of (module KL)
  let gen_hi = gen_of (module KH)

  let suite name =
    ( name ^ " promote/demote",
      [
        to_alco "demote inverts promote exactly" gen_lo (fun x ->
            KL.equal (Rf.demote (Rf.promote x)) x);
        to_alco "promote zero-pads the limb planes" gen_lo (fun x ->
            let lo = KL.to_planes x and hi = KH.to_planes (Rf.promote x) in
            let parts = if KL.is_complex then 2 else 1 in
            let wl = KL.width / parts and wh = KH.width / parts in
            let ok = ref true in
            for p = 0 to parts - 1 do
              for i = 0 to wh - 1 do
                let want = if i < wl then lo.((p * wl) + i) else 0.0 in
                if hi.((p * wh) + i) <> want then ok := false
              done
            done;
            !ok);
        to_alco "demote truncates within the low precision" gen_hi (fun h ->
            let back = Rf.promote (Rf.demote h) in
            let d = KH.abs (KH.sub h back) in
            let m = KH.abs h in
            KH.R.compare d (KH.R.mul_float m (16.0 *. KL.R.eps)) <= 0);
        to_alco "demote of a promoted sum matches the low-precision add"
          (Gen.pair gen_lo gen_lo) (fun (a, b) ->
            (* The embedding is exact, so adding two promoted values in
               high precision and truncating back can differ from the
               low-precision add only by its final rounding. *)
            let hi = KH.add (Rf.promote a) (Rf.promote b) in
            let lo = KL.add a b in
            let d = KL.abs (KL.sub (Rf.demote hi) lo) in
            let m = KL.R.max (KL.abs lo) KL.R.one in
            KL.R.compare d (KL.R.mul_float m (16.0 *. KL.R.eps)) <= 0);
      ] )
end

module Pr_d_dd = Refine_props (Scalar.D) (Scalar.Dd)
module Pr_dd_qd = Refine_props (Scalar.Dd) (Scalar.Qd)
module Pr_qd_od = Refine_props (Scalar.Qd) (Scalar.Od)
module Pr_dd_od = Refine_props (Scalar.Dd) (Scalar.Od)
module Pr_zdd_zqd = Refine_props (Scalar.Zdd) (Scalar.Zqd)
module Pr_zqd_zod = Refine_props (Scalar.Zqd) (Scalar.Zod)

let () =
  Alcotest.run "properties"
    ([
      Pd.suite "double";
      Pdd.suite "double double";
      Pqd.suite "quad double";
      Pod.suite "octo double";
      Rdd.suite "double double";
      Rqd.suite "quad double";
      Rod.suite "octo double";
    ]
    @ flat_suites @ replay_suites
    @ [
      flat_gate_suite;
      Ld.suite "double";
      Ldd.suite "double double";
      Lqd.suite "quad double";
      Lzdd.suite "complex double double";
      Fpd.suite "double double";
      Fpq.suite "quad double";
      Spdd.suite "double double";
      Spz.suite "complex double double";
      Pr_d_dd.suite "double -> double double";
      Pr_dd_qd.suite "double double -> quad double";
      Pr_qd_od.suite "quad double -> octo double";
      Pr_dd_od.suite "double double -> octo double";
      Pr_zdd_zqd.suite "complex double double -> quad double";
      Pr_zqd_zod.suite "complex quad double -> octo double";
    ])
