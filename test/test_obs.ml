(* Tests for the observability layer: tracer transparency and event
   model, Chrome trace-event export, metrics exactness under concurrent
   hammering, snapshot serialization, and the per-stage roofline
   classification the paper's CGMA analysis predicts. *)

module P = Multidouble.Precision
module Json = Harness.Json
module T = Obs.Tracer
module M = Obs.Metrics
module R = Harness.Runners
module Pool = Dompool.Domain_pool

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

exception Boom

(* ---- tracer ---- *)

let test_disabled_transparent () =
  T.stop ();
  let before = T.event_count () in
  let v = T.span "quiet" (fun () -> 41 + 1) in
  checki "span returns the value" 42 v;
  T.instant "quiet instant";
  T.counter "quiet counter" 1.0;
  checki "nothing recorded while disabled" before (T.event_count ());
  match T.span "raising" (fun () -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "span swallowed the exception"

let test_recording () =
  T.start ();
  let v = T.span ~cat:"test" ~args:[ ("k", T.Int 7) ] "outer" (fun () -> 3) in
  checki "span value" 3 v;
  T.instant ~cat:"test" "ping";
  T.counter "clock" 12.5;
  (match T.span "boom" (fun () -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "span swallowed the exception");
  T.stop ();
  checki "four events recorded" 4 (T.event_count ());
  (* start drops the previous trace *)
  T.start ();
  T.stop ();
  checki "start clears" 0 (T.event_count ())

let test_export_schema () =
  T.start ();
  ignore (T.span ~cat:"a" "alpha" (fun () -> T.span ~cat:"b" "beta" Fun.id));
  T.instant ~args:[ ("why", T.Str "x"); ("on", T.Bool true) ] "mark";
  T.counter "track" 3.25;
  T.stop ();
  let doc = Json.of_string (T.export ()) in
  Alcotest.(check string)
    "display unit" "ms"
    Json.(get_string (member "displayTimeUnit" doc));
  let events = Json.get_list (Json.member "traceEvents" doc) in
  checki "all events exported" 4 (List.length events);
  List.iter
    (fun e ->
      ignore Json.(get_string (member "name" e));
      ignore Json.(get_string (member "ph" e));
      ignore Json.(get_float (member "ts" e));
      ignore Json.(get_int (member "pid" e));
      ignore Json.(get_int (member "tid" e));
      check "ts non-negative" true Json.(get_float (member "ts" e) >= 0.0))
    events;
  (* sorted by timestamp *)
  let ts = List.map (fun e -> Json.(get_float (member "ts" e))) events in
  check "sorted by ts" true (List.sort compare ts = ts);
  let phs =
    List.sort compare
      (List.map (fun e -> Json.(get_string (member "ph" e))) events)
  in
  Alcotest.(check (list string)) "phases" [ "C"; "X"; "X"; "i" ] phs

let test_span_nesting () =
  T.start ();
  ignore
    (T.span "outer" (fun () ->
         ignore (T.span "inner" (fun () -> Unix.sleepf 0.002));
         Unix.sleepf 0.001));
  T.stop ();
  let events = Json.(get_list (member "traceEvents" (of_string (T.export ())))) in
  let find name =
    List.find
      (fun e -> Json.(get_string (member "name" e)) = name)
      events
  in
  let bounds name =
    let e = find name in
    let ts = Json.(get_float (member "ts" e)) in
    (ts, ts +. Json.(get_float (member "dur" e)))
  in
  let o0, o1 = bounds "outer" and i0, i1 = bounds "inner" in
  check "inner starts after outer" true (o0 <= i0);
  check "inner ends before outer" true (i1 <= o1);
  check "inner has duration" true (i1 -. i0 >= 1000.0)

let test_traced_qr_run () =
  (* A traced table3-sized planning run: the simulator emits one kernel
     span per launch plus the device-clock counter track. *)
  T.start ();
  let r = R.qr P.DD Gpusim.Device.v100 ~n:1024 ~tile:128 in
  T.stop ();
  let events = Json.(get_list (member "traceEvents" (of_string (T.export ())))) in
  let kernels =
    List.filter
      (fun e ->
        match Json.member "cat" e with Json.Str "kernel" -> true | _ -> false)
      events
  in
  checki "one kernel span per launch" r.Harness.Report.launches
    (List.length kernels);
  List.iter
    (fun e ->
      Alcotest.(check string) "kernel spans are complete events" "X"
        Json.(get_string (member "ph" e));
      let args = Json.member "args" e in
      check "device ms recorded" true
        Json.(get_float (member "device_ms" args) > 0.0);
      check "block count recorded" true
        Json.(get_int (member "blocks" args) > 0))
    kernels;
  let stages =
    List.sort_uniq compare
      (List.map (fun e -> Json.(get_string (member "name" e))) kernels)
  in
  check "every QR stage traced" true
    (List.for_all (fun s -> List.mem s stages) Lsq_core.Stage.qr_stages);
  check "device clock track present" true
    (List.exists
       (fun e -> Json.(get_string (member "ph" e)) = "C")
       events)

(* ---- metrics ---- *)

let test_metrics_basic () =
  let reg = M.create () in
  let c = M.counter reg "c" in
  M.Counter.incr c;
  M.Counter.incr ~by:4 c;
  checki "counter" 5 (M.Counter.value c);
  let g = M.gauge reg "g" in
  M.Gauge.set g 2.5;
  check "gauge" true (M.Gauge.value g = 2.5);
  let h = M.histogram ~buckets:[| 1.0; 10.0 |] reg "h" in
  M.Histogram.observe h 0.5;
  M.Histogram.observe h 5.0;
  M.Histogram.observe h 50.0;
  checki "histogram count" 3 (M.Histogram.count h);
  check "histogram sum" true (M.Histogram.sum h = 55.5);
  Alcotest.(check (array int)) "bucketed" [| 1; 1; 1 |] (M.Histogram.bucket_counts h);
  (* get-or-create returns the same metric; kind mismatches are refused *)
  M.Counter.incr (M.counter reg "c");
  checki "same handle" 6 (M.Counter.value c);
  (match M.gauge reg "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  (* reset zeroes in place; the cached handles stay valid *)
  M.reset reg;
  checki "counter reset" 0 (M.Counter.value c);
  checki "histogram reset" 0 (M.Histogram.count h);
  M.Counter.incr c;
  checki "handle survives reset" 1 (M.Counter.value c)

let test_metrics_concurrent_exact () =
  (* Hammer one counter and one histogram from a parallel_for across the
     pool: totals must be exact, not approximately right. *)
  let reg = M.create () in
  let c = M.counter reg "hammer.count" in
  let h = M.histogram ~buckets:[| 100.0; 1000.0 |] reg "hammer.hist" in
  let n = 21_000 in
  Pool.parallel_for (Pool.get_default ()) 0 n (fun i ->
      M.Counter.incr c;
      M.Histogram.observe h (float_of_int (i mod 7)));
  checki "counter exact" n (M.Counter.value c);
  checki "histogram count exact" n (M.Histogram.count h);
  (* sum of (i mod 7) over 0..n-1 with n a multiple of 7: n/7 * 21 *)
  check "histogram sum exact" true
    (M.Histogram.sum h = float_of_int (n / 7 * 21));
  checki "all in the first bucket" n (M.Histogram.bucket_counts h).(0)

let test_histogram_quantiles () =
  (* Uniform 1..100 on unit buckets: the interpolating estimator
     recovers every percentile exactly at the bucket edges. *)
  let reg = M.create () in
  let bounds = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = M.histogram ~buckets:bounds reg "q" in
  for v = 1 to 100 do
    M.Histogram.observe h (float_of_int v)
  done;
  check "p50" true (M.Histogram.quantile h 0.5 = 50.0);
  check "p95" true (M.Histogram.quantile h 0.95 = 95.0);
  check "p99" true (M.Histogram.quantile h 0.99 = 99.0);
  check "p100" true (M.Histogram.quantile h 1.0 = 100.0);
  (* The snapshot carries the same estimates. *)
  (match List.assoc_opt "q" (M.snapshot reg) with
  | Some (M.Histogram { p50; p95; p99; _ }) ->
    check "snapshot p50" true (p50 = 50.0);
    check "snapshot p95" true (p95 = 95.0);
    check "snapshot p99" true (p99 = 99.0)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (* Edge cases: an empty histogram estimates 0; ranks landing in the
     unbounded overflow bucket clamp to the largest finite bound. *)
  let empty = M.histogram ~buckets:[| 1.0; 10.0 |] reg "q.empty" in
  check "empty" true (M.Histogram.quantile empty 0.5 = 0.0);
  let over = M.histogram ~buckets:[| 1.0; 10.0 |] reg "q.over" in
  M.Histogram.observe over 1e9;
  check "overflow clamps" true (M.Histogram.quantile over 0.99 = 10.0)

let test_quantiles_concurrent_exact () =
  (* Bucket counts are atomics, so quantiles are exact — not
     approximately right — under a parallel_for hammering the same
     histogram. *)
  let reg = M.create () in
  let bounds = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = M.histogram ~buckets:bounds reg "q.par" in
  let n = 10_000 in
  Pool.parallel_for (Pool.get_default ()) 0 n (fun i ->
      M.Histogram.observe h (float_of_int ((i mod 100) + 1)));
  checki "count exact" n (M.Histogram.count h);
  check "p50 exact" true (M.Histogram.quantile h 0.5 = 50.0);
  check "p95 exact" true (M.Histogram.quantile h 0.95 = 95.0);
  check "p99 exact" true (M.Histogram.quantile h 0.99 = 99.0)

let test_once_concurrent_first_use () =
  (* [Metrics.once] must survive what breaks an OCaml [lazy]: many
     domains racing to resolve the same handle on first use.  A raced
     lazy raises [Undefined] in the losers; [once] at worst resolves
     twice against the idempotent registry and every caller increments
     the same counter. *)
  let reg = M.create () in
  let handle = M.once (fun () -> M.counter reg "once.raced") in
  let domains =
    Array.init 6 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              M.Counter.incr (handle ())
            done))
  in
  Array.iter Domain.join domains;
  checki "every increment landed" 600 (M.Counter.value (handle ()))

let test_snapshot_roundtrip () =
  let reg = M.create () in
  M.Counter.incr ~by:9 (M.counter reg "a.count");
  M.Gauge.set (M.gauge reg "b.gauge") (-1.75);
  let h = M.histogram reg "c.hist" in
  M.Histogram.observe h 0.005;
  M.Histogram.observe h 42.0;
  M.Histogram.observe h 1e9;
  let snap = M.snapshot reg in
  checki "three metrics" 3 (List.length snap);
  check "sorted by name" true
    (List.map fst snap = List.sort compare (List.map fst snap));
  let back =
    Harness.Obs_io.metrics_of_json
      (Json.of_string (Json.to_string (Harness.Obs_io.json_of_metrics snap)))
  in
  check "snapshot round-trips" true (back = snap)

(* The quantiles of an empty distribution are undefined: the codec must
   omit the keys (so consumers can tell "no data" from "zero latency")
   and still round-trip by recomputing them from the buckets. *)
let test_empty_histogram_omits_quantiles () =
  let reg = M.create () in
  ignore (M.histogram reg "empty.hist");
  M.Histogram.observe (M.histogram reg "full.hist") 1.0;
  let snap = M.snapshot reg in
  let doc = Harness.Obs_io.json_of_metrics snap in
  let metric name =
    List.find
      (fun j -> Json.(get_string (member "name" j)) = name)
      (Json.get_list doc)
  in
  check "empty histogram omits p50" true
    (Json.member "p50" (metric "empty.hist") = Json.Null);
  check "empty histogram omits p95" true
    (Json.member "p95" (metric "empty.hist") = Json.Null);
  check "empty histogram omits p99" true
    (Json.member "p99" (metric "empty.hist") = Json.Null);
  check "populated histogram keeps p50" true
    (Json.member "p50" (metric "full.hist") <> Json.Null);
  let back =
    Harness.Obs_io.metrics_of_json (Json.of_string (Json.to_string doc))
  in
  check "omission round-trips" true (back = snap)

let test_sim_metrics_counted () =
  (* The simulator's always-on metrics: launches land in the default
     registry whether or not the tracer runs. *)
  M.reset (M.default ());
  let r = R.qr P.DD Gpusim.Device.v100 ~n:256 ~tile:64 in
  let snap = M.snapshot (M.default ()) in
  (match List.assoc_opt "sim.launches" snap with
  | Some (M.Counter n) -> checki "launches counted" r.Harness.Report.launches n
  | _ -> Alcotest.fail "sim.launches missing");
  match List.assoc_opt "sim.kernel_ms" snap with
  | Some (M.Histogram { count; _ }) ->
    checki "every kernel observed" r.Harness.Report.launches count
  | _ -> Alcotest.fail "sim.kernel_ms missing"

(* ---- roofline ---- *)

let test_roofline_classification () =
  (* The acceptance shape on the default V100: double double stages are
     memory-bound (intensity ~1.3 flops/byte, far below the 8.8 ridge),
     octo double stages compute-bound (the Table 1 multipliers raise the
     arithmetic intensity ~12x). *)
  let v100 = Gpusim.Device.v100 in
  let dd = R.qr_roofline P.DD v100 ~n:1024 ~tile:128 in
  let od = R.qr_roofline P.OD v100 ~n:1024 ~tile:128 in
  checki "one row per stage" (List.length Lsq_core.Stage.qr_stages)
    (List.length dd);
  check "dd aggregate memory-bound" true
    ((Obs.Roofline.total dd).Obs.Roofline.bound = Obs.Roofline.Memory);
  check "od aggregate compute-bound" true
    ((Obs.Roofline.total od).Obs.Roofline.bound = Obs.Roofline.Compute);
  let dominant stages =
    List.fold_left
      (fun (a : Obs.Roofline.stage) (b : Obs.Roofline.stage) ->
        if b.Obs.Roofline.ms > a.Obs.Roofline.ms then b else a)
      (List.hd stages) (List.tl stages)
  in
  check "dd dominant stage memory-bound" true
    ((dominant dd).Obs.Roofline.bound = Obs.Roofline.Memory);
  check "od dominant stage compute-bound" true
    ((dominant od).Obs.Roofline.bound = Obs.Roofline.Compute);
  check "od intensity above dd" true
    ((Obs.Roofline.total od).Obs.Roofline.intensity
    > 4.0 *. (Obs.Roofline.total dd).Obs.Roofline.intensity);
  List.iter
    (fun (s : Obs.Roofline.stage) ->
      check "pct_peak sane" true
        (s.Obs.Roofline.pct_peak >= 0.0 && s.Obs.Roofline.pct_peak <= 100.0);
      check "flops positive" true (s.Obs.Roofline.flops > 0.0);
      check "bytes positive" true (s.Obs.Roofline.bytes > 0.0))
    (dd @ od)

let test_microkernel_tiles () =
  (* The flat kernels' register tiles, classified from their per-tile
     op/byte counts alone: the same dd-memory / od-compute shape as the
     full stages, and the KC blocking factor shrinking as the limb
     count grows (the B panel budget is fixed). *)
  let v100 = Gpusim.Device.v100 in
  let classify name (t : Mdlinalg.Flat_kernels.tile) =
    Obs.Roofline.microkernel ~stage:name ~flops:t.Mdlinalg.Flat_kernels.flops
      ~bytes:t.Mdlinalg.Flat_kernels.bytes
      ~peak_gflops:v100.Gpusim.Device.dp_peak_gflops
      ~dram_gb_s:v100.Gpusim.Device.dram_gb_s
  in
  let module Fdd = Mdlinalg.Flat_kernels.Make (Mdlinalg.Scalar.Dd) in
  let module Fod = Mdlinalg.Flat_kernels.Make (Mdlinalg.Scalar.Od) in
  let ddt = Fdd.tile and odt = Fod.tile in
  checki "dd kc" 128 ddt.Mdlinalg.Flat_kernels.kc;
  checki "od kc" 32 odt.Mdlinalg.Flat_kernels.kc;
  checki "nr lanes" 8 ddt.Mdlinalg.Flat_kernels.nr;
  let dd = classify "dd matmul tile" ddt in
  let od = classify "od matmul tile" odt in
  let ridge =
    Obs.Roofline.ridge ~peak_gflops:v100.Gpusim.Device.dp_peak_gflops
      ~dram_gb_s:v100.Gpusim.Device.dram_gb_s
  in
  check "dd tile memory-bound" true
    (dd.Obs.Roofline.bound = Obs.Roofline.Memory);
  check "od tile compute-bound" true
    (od.Obs.Roofline.bound = Obs.Roofline.Compute);
  check "dd tile below ridge" true (dd.Obs.Roofline.intensity < ridge);
  check "od tile above ridge" true (od.Obs.Roofline.intensity > ridge)

let test_roofline_json_roundtrip () =
  let v100 = Gpusim.Device.v100 in
  let stages = R.bs_roofline P.QD v100 ~dim:2560 ~tile:32 in
  let ridge =
    Obs.Roofline.ridge ~peak_gflops:v100.Gpusim.Device.dp_peak_gflops
      ~dram_gb_s:v100.Gpusim.Device.dram_gb_s
  in
  let doc =
    Harness.Obs_io.json_of_roofline ~label:"bs 4d dim=2560" ~device:"v100"
      ~ridge stages
  in
  let label, device, ridge', stages' =
    Harness.Obs_io.roofline_of_json (Json.of_string (Json.to_string doc))
  in
  Alcotest.(check string) "label" "bs 4d dim=2560" label;
  Alcotest.(check string) "device" "v100" device;
  check "ridge" true (ridge' = ridge);
  check "stages round-trip" true (stages' = stages)

(* ---- structured log ---- *)

module L = Obs.Log
module H = Obs.Health
module Tel = Obs.Telemetry
module OIO = Harness.Obs_io

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_log_gate_and_buffer () =
  L.set_level L.Info;
  L.set_sink L.Buffered;
  L.debug "below the gate";
  L.info "first" ~fields:[ ("k", L.Int 1) ];
  L.warn "second"
    ~fields:[ ("who", L.Str "x"); ("f", L.Float 1.5); ("b", L.Bool true) ];
  checki "debug filtered, two buffered" 2 (L.buffered ());
  let records = L.drain () in
  checki "drained both" 2 (List.length records);
  checki "drain empties the buffers" 0 (L.buffered ());
  (match records with
  | [ a; b ] ->
    check "timestamp sorted" true (a.L.ts_ms <= b.L.ts_ms);
    Alcotest.(check string) "first event" "first" a.L.event;
    check "warn level" true (b.L.level = L.Warn);
    check "fields survive" true
      (b.L.fields
      = [ ("who", L.Str "x"); ("f", L.Float 1.5); ("b", L.Bool true) ])
  | _ -> Alcotest.fail "expected exactly two records");
  L.set_sink L.Off;
  L.info "while off";
  checki "off records nothing" 0 (L.buffered ())

let test_log_concurrent_drain () =
  L.set_level L.Debug;
  L.set_sink L.Buffered;
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              L.info (Printf.sprintf "d%d-%d" d i)
            done))
  in
  Array.iter Domain.join domains;
  let records = L.drain () in
  L.set_sink L.Off;
  L.set_level L.Info;
  checki "every record from every domain drained" 400 (List.length records);
  checki "no drops below the cap" 0 (L.dropped ())

let test_log_json_roundtrip () =
  L.set_level L.Debug;
  L.set_sink L.Buffered;
  L.warn "evt"
    ~fields:
      [
        ("s", L.Str "a\"b\\c\nd");
        ("i", L.Int (-3));
        ("f", L.Float 0.25);
        ("ok", L.Bool false);
      ];
  let r = List.hd (L.drain ()) in
  L.set_sink L.Off;
  L.set_level L.Info;
  match OIO.telemetry_line_of_string (L.to_json_line r) with
  | OIO.Log_line r' -> check "log line round-trips" true (r' = r)
  | OIO.Snapshot _ -> Alcotest.fail "log line parsed as a snapshot"

(* ---- health / SLO ---- *)

let test_health_slo_and_budget () =
  H.reset ();
  H.set_slo ~cls:"v100" ~p95_ms:10.0;
  H.set_error_budget ~cls:"v100" 0.5;
  for _ = 1 to 19 do
    H.observe ~cls:"v100" ~ok:true ~latency_ms:5.0
  done;
  H.observe ~cls:"v100" ~ok:false ~latency_ms:5.0;
  (match H.status () with
  | [ s ] ->
    check "p95 of the window" true (s.H.p95_ms = Some 5.0);
    check "within the SLO" true s.H.slo_ok;
    checki "failures counted" 1 s.H.failures;
    check "budget used 10%" true (Float.abs (s.H.budget_used -. 0.1) < 1e-9);
    check "budget holds" true s.H.budget_ok
  | ss -> Alcotest.failf "expected one class, got %d" (List.length ss));
  (* Two slow outcomes push the window's p95 past the target; a tight
     budget is exhausted by the same failure count. *)
  H.observe ~cls:"v100" ~ok:true ~latency_ms:100.0;
  H.observe ~cls:"v100" ~ok:true ~latency_ms:100.0;
  H.set_error_budget ~cls:"v100" 0.01;
  (match H.status () with
  | [ s ] ->
    check "SLO breached" false s.H.slo_ok;
    check "budget exhausted" false s.H.budget_ok
  | _ -> Alcotest.fail "expected one class");
  H.reset ()

let test_health_drift () =
  H.reset ();
  L.set_level L.Info;
  L.set_sink L.Buffered;
  (* Calibrated model: measured equals predicted, detector quiet. *)
  H.observe_model ~stage:"s" ~predicted_ms:2.0 ~measured_ms:2.0;
  (match H.drift () with
  | [ d ] -> check "quiet when calibrated" false d.H.drifted
  | _ -> Alcotest.fail "expected one stage");
  checki "no warning raised" 0 (List.length (L.drain ()));
  (* Miscalibrated: cumulative measured is 2x predicted — flagged, and
     a structured model_drift warning rides the log. *)
  H.observe_model ~stage:"s" ~predicted_ms:2.0 ~measured_ms:6.0;
  (match H.drift () with
  | [ d ] ->
    check "drift flagged" true d.H.drifted;
    check "ratio is 2x" true (Float.abs (d.H.ratio -. 2.0) < 1e-9);
    checki "both samples counted" 2 d.H.samples
  | _ -> Alcotest.fail "expected one stage");
  let logs = L.drain () in
  check "model_drift warning logged" true
    (List.exists (fun (r : L.record) -> r.L.event = "model_drift") logs);
  (* Still inside the same excursion: no duplicate warning. *)
  H.observe_model ~stage:"s" ~predicted_ms:1.0 ~measured_ms:3.0;
  check "one warning per excursion" true
    (not
       (List.exists
          (fun (r : L.record) -> r.L.event = "model_drift")
          (L.drain ())));
  L.set_sink L.Off;
  H.reset ()

(* ---- telemetry exporter ---- *)

let test_prometheus_exposition () =
  let reg = M.create () in
  M.Counter.incr ~by:7 (M.counter reg "fleet.submitted");
  M.Gauge.set (M.gauge reg "fleet.util.v100#0") 0.25;
  let h = M.histogram ~buckets:M.latency_buckets reg "fleet.latency_ms.v100" in
  M.Histogram.observe h 1.0;
  M.Histogram.observe h 100.0;
  let text = Tel.prometheus_of_snapshot (M.snapshot reg) in
  check "counter type declared" true
    (contains text "# TYPE mdls_fleet_submitted_total counter");
  check "counter sample" true (contains text "mdls_fleet_submitted_total 7");
  check "instance label from the third segment" true
    (contains text "mdls_fleet_util{instance=\"v100#0\"} 0.25");
  check "histogram type declared" true
    (contains text "# TYPE mdls_fleet_latency_ms histogram");
  check "+Inf bucket carries the count" true
    (contains text "mdls_fleet_latency_ms_bucket{instance=\"v100\",le=\"+Inf\"} 2");
  check "histogram count series" true
    (contains text "mdls_fleet_latency_ms_count{instance=\"v100\"} 2")

let test_telemetry_exporter () =
  let reg = M.create () in
  M.Counter.incr ~by:3 (M.counter reg "fleet.submitted");
  M.Gauge.set (M.gauge reg "fleet.util.v100#0") 0.5;
  let path = Filename.temp_file "tel_test" ".jsonl" in
  let t = Tel.start ~interval_ms:10.0 ~registry:reg (Tel.File path) in
  Unix.sleepf 0.05;
  M.Counter.incr ~by:2 (M.counter reg "fleet.submitted");
  Tel.stop t;
  check "at least two ticks" true (Tel.ticks t >= 2);
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (OIO.telemetry_line_of_string line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  let snapshots =
    List.filter_map
      (function OIO.Snapshot s -> Some s | OIO.Log_line _ -> None)
      (go [])
  in
  Sys.remove path;
  check "one snapshot per tick" true (List.length snapshots = Tel.ticks t);
  let submitted (s : OIO.telemetry_snapshot) =
    match List.assoc_opt "fleet.submitted" s.OIO.metrics with
    | Some (M.Counter c) -> c
    | _ -> Alcotest.fail "snapshot lost the counter"
  in
  let first = List.hd snapshots in
  let last = List.nth snapshots (List.length snapshots - 1) in
  checki "sequence starts at zero" 0 first.OIO.seq;
  checki "immediate first tick sees the initial value" 3 (submitted first);
  checki "final tick sees the update" 5 (submitted last);
  check "counter monotone across snapshots" true
    (fst
       (List.fold_left
          (fun (ok, prev) s -> (ok && submitted s >= prev, submitted s))
          (true, 0) snapshots));
  check "gauge survives the stream" true
    (List.assoc_opt "fleet.util.v100#0" last.OIO.metrics
    = Some (M.Gauge 0.5))

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "disabled is transparent" `Quick
            test_disabled_transparent;
          Alcotest.test_case "recording" `Quick test_recording;
          Alcotest.test_case "export schema" `Quick test_export_schema;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "traced qr run" `Quick test_traced_qr_run;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basic;
          Alcotest.test_case "concurrent exactness" `Quick
            test_metrics_concurrent_exact;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "quantiles exact under parallel_for" `Quick
            test_quantiles_concurrent_exact;
          Alcotest.test_case "once under concurrent first use" `Quick
            test_once_concurrent_first_use;
          Alcotest.test_case "snapshot json round-trip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "empty histogram omits quantiles" `Quick
            test_empty_histogram_omits_quantiles;
          Alcotest.test_case "simulator counters" `Quick
            test_sim_metrics_counted;
        ] );
      ( "log",
        [
          Alcotest.test_case "level gate and buffering" `Quick
            test_log_gate_and_buffer;
          Alcotest.test_case "concurrent push, single drain" `Quick
            test_log_concurrent_drain;
          Alcotest.test_case "json line round-trip" `Quick
            test_log_json_roundtrip;
        ] );
      ( "health",
        [
          Alcotest.test_case "slo and error budget" `Quick
            test_health_slo_and_budget;
          Alcotest.test_case "cost-model drift" `Quick test_health_drift;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "exporter stream" `Quick test_telemetry_exporter;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "dd memory, od compute" `Quick
            test_roofline_classification;
          Alcotest.test_case "microkernel tiles" `Quick test_microkernel_tiles;
          Alcotest.test_case "json round-trip" `Quick
            test_roofline_json_roundtrip;
        ] );
    ]
