(* Tests for the experiment harness (the runners the CLI and the bench
   share) and for the multicore host kernels. *)

open Mdlinalg
module P = Multidouble.Precision
module R = Harness.Runners
module Rep = Harness.Report

let check = Alcotest.(check bool)

let test_qr_runner_all_precisions () =
  List.iter
    (fun p ->
      List.iter
        (fun complex ->
          let r = R.qr ~complex p Gpusim.Device.v100 ~n:256 ~tile:64 in
          check "kernel time positive" true (r.Rep.kernel_ms > 0.0);
          check "wall >= kernels" true (r.Rep.wall_ms >= r.Rep.kernel_ms);
          check "stages labeled" true
            (List.map fst (Rep.stage_ms r) = Lsq_core.Stage.qr_stages);
          check "kernel ms is stage sum" true
            (Float.abs
               (List.fold_left (fun a (_, m) -> a +. m) 0.0 (Rep.stage_ms r)
               -. r.Rep.kernel_ms)
            < 1e-6 *. r.Rep.kernel_ms);
          check "stage launches positive" true
            (List.for_all
               (fun (s : Rep.Row.t) -> s.Rep.Row.launches > 0)
               r.Rep.stages);
          check "launches is stage sum" true
            (List.fold_left
               (fun a (s : Rep.Row.t) -> a + s.Rep.Row.launches)
               0 r.Rep.stages
            = r.Rep.launches);
          check "stage ops recorded" true
            (List.exists
               (fun (s : Rep.Row.t) ->
                 Gpusim.Counter.total s.Rep.Row.ops > 0.0)
               r.Rep.stages);
          (* complex costs more than real at the same shape *)
          if complex then begin
            let real = R.qr ~complex:false p Gpusim.Device.v100 ~n:256 ~tile:64 in
            check "complex dearer" true (r.Rep.kernel_ms > real.Rep.kernel_ms)
          end)
        [ false; true ])
    P.all

let test_bs_runner () =
  List.iter
    (fun p ->
      let r = R.bs p Gpusim.Device.v100 ~dim:2560 ~tile:32 in
      check "stages labeled" true
        (List.map fst (Rep.stage_ms r) = Lsq_core.Stage.bs_stages);
      Alcotest.(check int) "1 + N(N+1)/2" (1 + (80 * 81 / 2)) r.Rep.launches)
    P.all

let test_solve_runner () =
  let r = R.solve P.QD Gpusim.Device.v100 ~n:1024 ~tile:128 in
  let qr = Rep.part r R.qr_part and bs = Rep.part r R.bs_part in
  check "qr dominates bs" true
    (qr.Rep.Part.kernel_ms > 10.0 *. bs.Rep.Part.kernel_ms);
  check "total between parts" true
    (r.Rep.kernel_gflops <= qr.Rep.Part.kernel_gflops +. 1.0);
  check "kernel ms is part sum" true
    (Float.abs (r.Rep.kernel_ms -. qr.Rep.Part.kernel_ms -. bs.Rep.Part.kernel_ms)
    < 1e-6 *. r.Rep.kernel_ms)

let test_report_json_roundtrip () =
  let exact = Alcotest.(check bool) in
  (* A single-phase report: stage list, no parts, no residual. *)
  let qr = R.qr P.DD Gpusim.Device.v100 ~n:256 ~tile:64 in
  exact "qr report round-trips" true (Rep.of_json (Rep.to_json qr) = qr);
  exact "qr report string round-trips" true
    (Rep.of_json_string (Rep.to_json_string qr) = qr);
  (* A composite report with parts, a residual and a metrics snapshot
     attached. *)
  let solve = R.solve P.QD Gpusim.Device.v100 ~n:64 ~tile:16 in
  let metrics =
    let reg = Obs.Metrics.create () in
    Obs.Metrics.Counter.incr ~by:7 (Obs.Metrics.counter reg "test.count");
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg "test.level") 2.5;
    Obs.Metrics.Histogram.observe (Obs.Metrics.histogram reg "test.hist") 0.4;
    Obs.Metrics.snapshot reg
  in
  let solve =
    {
      solve with
      Rep.residual = Some (R.verify_solve P.QD Gpusim.Device.v100 ~n:16 ~tile:8);
      metrics = Some metrics;
    }
  in
  exact "solve report round-trips" true
    (Rep.of_json_string (Rep.to_json_string solve) = solve);
  (* Schema violations are rejected, not silently misread. *)
  (match Rep.of_json_string "{\"schema\": 999}" with
  | exception Harness.Json.Error _ -> ()
  | _ -> Alcotest.fail "wrong schema version accepted");
  match Rep.of_json_string "[1, 2]" with
  | exception Harness.Json.Error _ -> ()
  | _ -> Alcotest.fail "non-object report accepted"

let test_rates_scale_with_device () =
  (* Faster device, same work: more gigaflops at full occupancy. *)
  let v = R.qr P.OD Gpusim.Device.v100 ~n:1024 ~tile:128 in
  let c = R.qr P.OD Gpusim.Device.c2050 ~n:1024 ~tile:128 in
  check "v100 beats c2050" true (v.Rep.kernel_gflops > 4.0 *. c.Rep.kernel_gflops)

let test_verifiers () =
  let d = Gpusim.Device.v100 in
  check "qr ok" true (R.verify_qr P.DD d ~n:32 ~tile:8).Rep.ok;
  check "bs ok" true (R.verify_bs P.QD d ~dim:32 ~tile:8).Rep.ok;
  check "solve ok" true (R.verify_solve P.DD d ~n:16 ~tile:8).Rep.ok;
  check "complex qr ok" true
    (R.verify_qr ~complex:true P.DD d ~n:16 ~tile:8).Rep.ok

(* ---- multicore host kernels ---- *)

module Pb (K : Scalar.S) = struct
  module B = Par_blas.Make (K)
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module H = Host_qr.Make (K)
  module Rand = Randmat.Make (K)

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let run () =
    let rng = Dompool.Prng.create 777 in
    let a = Rand.matrix rng 33 21 and b = Rand.matrix rng 21 17 in
    let v = Rand.vector rng 21 in
    (* parallel results equal the serial reference *)
    check "matvec" true
      (small
         (K.R.div
            (V.norm (V.sub (B.matvec a v) (M.matvec a v)))
            (K.R.add_float (V.norm v) 1.0)));
    check "matmul" true
      (small (M.rel_distance (B.matmul a b) (M.matmul a b)));
    let sq = Rand.matrix rng 28 28 in
    let q, r = B.qr_factor sq in
    check "orthogonal" true (small (H.orthogonality_defect q));
    check "reconstructs" true (small (H.factorization_residual sq q r));
    (* upper triangular *)
    let ok = ref true in
    for i = 0 to 27 do
      for j = 0 to i - 1 do
        if not (K.is_zero (M.get r i j)) then ok := false
      done
    done;
    check "R upper" true !ok
end

module Pb_dd = Pb (Scalar.Dd)
module Pb_qd = Pb (Scalar.Qd)
module Pb_zdd = Pb (Scalar.Zdd)

let () =
  Alcotest.run "harness"
    [
      ( "runners",
        [
          Alcotest.test_case "qr all precisions" `Quick
            test_qr_runner_all_precisions;
          Alcotest.test_case "back substitution" `Quick test_bs_runner;
          Alcotest.test_case "solver" `Quick test_solve_runner;
          Alcotest.test_case "device scaling" `Quick
            test_rates_scale_with_device;
          Alcotest.test_case "verifiers" `Quick test_verifiers;
          Alcotest.test_case "report json round-trip" `Quick
            test_report_json_roundtrip;
        ] );
      ( "multicore host",
        [
          Alcotest.test_case "double double" `Quick Pb_dd.run;
          Alcotest.test_case "quad double" `Quick Pb_qd.run;
          Alcotest.test_case "complex double double" `Quick Pb_zdd.run;
        ] );
    ]
