(* Tests for the fleet service: deterministic roofline placement,
   work-stealing steal-count invariants, bounded-queue backpressure, and
   the schema-4 outcome codec with its placement record. *)

module P = Multidouble.Precision
module D = Gpusim.Device
module Job = Sched.Job
module F = Sched.Fleet
module S = Sched.Scheduler
module Json = Harness.Json

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let solve ?(device = Job.auto_device) ?inject_failures ?retries ~id ~prec ()
    =
  Job.make ?inject_failures ?retries ~id ~kind:Job.Solve ~device ~prec
    ~dim:1024 ~tile:128 ()

let class_of_instance id =
  match String.index_opt id '#' with
  | Some i -> String.sub id 0 i
  | None -> id

let placement (o : S.outcome) =
  match o.S.placement with
  | Some p -> p
  | None -> Alcotest.failf "%s has no placement record" o.S.job.Job.id

(* ---- roofline placement ---- *)

(* dd solve at n=1024 is memory-bound, od compute-bound; the policy must
   route them to the bandwidth-rich RTX 2080 and the compute-rich V100
   classes respectively.  Admission happens synchronously at submit, so
   holding the workers back (autostart:false) makes the queue layout —
   and with it the whole test — deterministic. *)
let test_placement () =
  check "dd is memory-bound" true
    (F.classify_job (solve ~id:"c" ~prec:P.DD ()) = Obs.Roofline.Memory);
  check "od is compute-bound" true
    (F.classify_job (solve ~id:"c" ~prec:P.OD ()) = Obs.Roofline.Compute);
  let fleet = F.create ~autostart:false F.Config.default in
  let jobs =
    [
      solve ~id:"dd-0" ~prec:P.DD ();
      solve ~id:"dd-1" ~prec:P.DD ();
      solve ~id:"od-0" ~prec:P.OD ();
      solve ~id:"od-1" ~prec:P.OD ();
    ]
  in
  List.iteri
    (fun i job ->
      match F.submit fleet job with
      | Ok ticket -> checki "tickets number admissions" i ticket
      | Error r -> Alcotest.failf "%s rejected: %s" job.Job.id (F.reject_message r))
    jobs;
  (* Before any worker runs: both dd jobs sit on the two RTX 2080
     queues (shortest-queue within the class), both od jobs on the two
     V100 queues; everything else is empty. *)
  List.iter
    (fun (s : F.stats) ->
      let expected =
        match s.F.device with
        | Some d when D.slug d = "rtx2080" || D.slug d = "v100" -> 1
        | _ -> 0
      in
      checki (Printf.sprintf "queue depth of %s" s.F.id) expected
        s.F.queue_depth)
    (F.stats fleet);
  F.start fleet;
  let outcomes = F.drain fleet in
  F.shutdown fleet;
  checki "one outcome per job" (List.length jobs) (List.length outcomes);
  List.iter
    (fun o ->
      let p = placement o in
      let admitted = class_of_instance p.S.admitted_to in
      let wanted =
        if o.S.job.Job.prec = P.DD then "rtx2080" else "v100"
      in
      checks
        (Printf.sprintf "%s admitted to the %s class" o.S.job.Job.id wanted)
        wanted admitted;
      checki
        (Printf.sprintf "%s admitted at depth < 2" o.S.job.Job.id)
        0
        (if p.S.queue_depth < 2 then 0 else p.S.queue_depth);
      (* The executed device is the executing instance's class. *)
      checks "job device matches executor"
        (class_of_instance p.S.device_id)
        o.S.job.Job.device;
      match o.S.status with
      | S.Completed _ -> ()
      | S.Failed f -> Alcotest.failf "%s failed: %s" o.S.job.Job.id f.S.message)
    outcomes

(* Pinned jobs keep their named device even when a foreign instance
   executes them: instances are capacity, the simulation identity is the
   job's. *)
let test_pinned_device_kept () =
  let outcomes =
    S.run
      (S.Config.batch ~parallel:2 ~backoff_ms:0.0 ())
      [ solve ~device:"p100" ~id:"pinned" ~prec:P.DD () ]
  in
  match outcomes with
  | [ o ] ->
    checks "pinned device kept" "p100" o.S.job.Job.device;
    check "generic instance executed it" true
      (class_of_instance (placement o).S.device_id = "any")
  | _ -> Alcotest.fail "expected one outcome"

(* ---- work stealing ---- *)

(* Two instances, every job pinned to one of them.  Holding the workers
   back queues all six jobs on the V100; injected failures make each job
   sleep in backoff, so the idle C2050 worker provably steals.  The
   invariant: the fleet's steal counter, the per-outcome steal flags and
   the admitted/executor mismatches all agree. *)
let test_steal_invariants () =
  let config =
    {
      F.Config.default with
      pool = [ (Some D.c2050, 1); (Some D.v100, 1) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 30.0;
    }
  in
  let fleet = F.create ~autostart:false config in
  let jobs =
    List.init 6 (fun i ->
        solve
          ~device:"v100"
          ~id:(Printf.sprintf "steal-%d" i)
          ~prec:P.DD ~inject_failures:1 ~retries:1 ())
  in
  List.iter
    (fun job ->
      match F.submit fleet job with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "rejected: %s" (F.reject_message r))
    jobs;
  F.start fleet;
  let outcomes = F.drain fleet in
  F.shutdown fleet;
  checki "one outcome per job" (List.length jobs) (List.length outcomes);
  let steal_sum =
    List.fold_left (fun acc o -> acc + (placement o).S.steals) 0 outcomes
  in
  let moved =
    List.filter
      (fun o ->
        let p = placement o in
        p.S.device_id <> p.S.admitted_to)
      outcomes
  in
  checki "outcome steal flags equal the fleet counter" (F.steals fleet)
    steal_sum;
  checki "every steal moved the job" steal_sum (List.length moved);
  check "stealing occurred" true (steal_sum >= 1);
  List.iter
    (fun o ->
      checks "everything was admitted to the pinned device" "v100#0"
        (placement o).S.admitted_to;
      check "steal flag is 0 or 1" true
        (let s = (placement o).S.steals in
         s = 0 || s = 1);
      (* A stolen pinned job still simulates its own device. *)
      checks "pinned device survived the steal" "v100" o.S.job.Job.device)
    outcomes;
  let stats_stolen =
    List.fold_left (fun acc (s : F.stats) -> acc + s.F.stolen) 0
      (F.stats fleet)
  in
  checki "per-instance stolen tallies agree" steal_sum stats_stolen;
  checki "every job executed" 6
    (List.fold_left (fun acc (s : F.stats) -> acc + s.F.executed) 0
       (F.stats fleet))

(* The fleet's steal instant must name both sides of the transfer: the
   thief instance under "by" and the owning (admitted-to) instance under
   "owner", so a trace reader can reconstruct queue migrations without
   joining against the admit events. *)
let test_steal_instant_args () =
  let config =
    {
      F.Config.default with
      pool = [ (Some D.c2050, 1); (Some D.v100, 1) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 30.0;
    }
  in
  Obs.Tracer.start ();
  let fleet = F.create ~autostart:false config in
  let jobs =
    List.init 6 (fun i ->
        solve ~device:"v100"
          ~id:(Printf.sprintf "steal-args-%d" i)
          ~prec:P.DD ~inject_failures:1 ~retries:1 ())
  in
  List.iter
    (fun job ->
      match F.submit fleet job with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "rejected: %s" (F.reject_message r))
    jobs;
  F.start fleet;
  ignore (F.drain fleet);
  F.shutdown fleet;
  Obs.Tracer.stop ();
  let doc = Json.of_string (Obs.Tracer.export ()) in
  let steals =
    Json.get_list (Json.member "traceEvents" doc)
    |> List.filter (fun e ->
           Json.(get_string (member "name" e)) = "steal"
           && Json.(get_string (member "cat" e)) = "fleet")
  in
  checki "one instant per recorded steal" (F.steals fleet)
    (List.length steals);
  check "stealing occurred" true (steals <> []);
  List.iter
    (fun e ->
      let args = Json.member "args" e in
      let job = Json.(get_string (member "job" args)) in
      check "instant names the stolen job" true
        (String.length job > String.length "steal-args-"
        && String.sub job 0 11 = "steal-args-");
      checks "owner is the admitted v100 instance" "v100#0"
        Json.(get_string (member "owner" args));
      checks "thief is the idle c2050 instance" "c2050#0"
        Json.(get_string (member "by" args)))
    steals

(* With stealing off, jobs only run where they were admitted. *)
let test_no_steal () =
  let config =
    {
      F.Config.default with
      pool = [ (Some D.c2050, 1); (Some D.v100, 1) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 5.0;
      steal = false;
    }
  in
  let fleet = F.create ~autostart:false config in
  let jobs =
    List.init 4 (fun i ->
        solve ~device:"v100" ~id:(Printf.sprintf "pin-%d" i) ~prec:P.DD ())
  in
  List.iter (fun j -> ignore (F.submit fleet j)) jobs;
  F.start fleet;
  let outcomes = F.drain fleet in
  F.shutdown fleet;
  checki "no steals" 0 (F.steals fleet);
  List.iter
    (fun o ->
      checks "executed where admitted" (placement o).S.admitted_to
        (placement o).S.device_id)
    outcomes

(* ---- admission control / backpressure ---- *)

let test_backpressure () =
  let config =
    {
      F.Config.default with
      pool = [ (Some D.v100, 1) ];
      max_queue_depth = 2;
      backoff_ms = 0.0;
    }
  in
  let fleet = F.create ~autostart:false config in
  let job i = solve ~device:"v100" ~id:(Printf.sprintf "bp-%d" i) ~prec:P.DD () in
  (match F.submit fleet (job 0) with
  | Ok t -> checki "first ticket" 0 t
  | Error r -> Alcotest.failf "rejected: %s" (F.reject_message r));
  (match F.submit fleet (job 1) with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "rejected: %s" (F.reject_message r));
  (* Queue at the bound: the third submission must bounce, naming the
     instance it would have used and the depth it saw. *)
  (match F.submit fleet (job 2) with
  | Ok _ -> Alcotest.fail "third submission must be rejected"
  | Error (F.Queue_full { device_id; queue_depth }) ->
    checks "rejection names the preferred instance" "v100#0" device_id;
    checki "rejection reports the depth" 2 queue_depth;
    (* The rejection line is schema-stamped and carries the job. *)
    let line = F.reject_to_json (job 2) (F.Queue_full { device_id; queue_depth }) in
    checki "rejection line schema" S.schema_version
      (Json.get_int (Json.member "schema" line));
    checks "rejection line status" "rejected"
      (Json.get_string (Json.member "status" line));
    checks "rejection line device" "v100#0"
      (Json.get_string
         (Json.member "device_id" (Json.member "error" line)))
  | Error F.Draining -> Alcotest.fail "wrong rejection reason");
  F.start fleet;
  let outcomes = F.drain fleet in
  checki "only the admitted jobs ran" 2 (List.length outcomes);
  F.shutdown fleet;
  (* After shutdown every submission drains away. *)
  match F.submit fleet (job 3) with
  | Error F.Draining -> ()
  | Ok _ | Error (F.Queue_full _) ->
    Alcotest.fail "submissions after shutdown must report Draining"

(* ---- schema 6 ---- *)

let test_schema6_roundtrip () =
  let outcomes =
    S.run
      { S.Config.default with F.Config.max_queue_depth = F.Config.unbounded }
      [ solve ~id:"rt-dd" ~prec:P.DD (); solve ~id:"rt-od" ~prec:P.OD () ]
  in
  List.iter
    (fun o ->
      let line = Json.to_string (S.outcome_to_json o) in
      let o' = S.outcome_of_json (Json.of_string line) in
      check "outcome round-trips with placement" true (o = o');
      checki "schema is 6" 6 S.schema_version;
      check "placement survives the codec" true (o'.S.placement <> None);
      let p = placement o in
      check "undisturbed job has no migration trail" true
        (p.S.migrations = []);
      check "undisturbed job is unhedged" true (p.S.hedged = false))
    outcomes;
  (* An old-version stamp must be refused. *)
  let o = List.hd outcomes in
  let forged =
    match S.outcome_to_json o with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", Json.Int 3)
             | f -> f)
           fields)
    | _ -> Alcotest.fail "outcome did not serialize to an object"
  in
  match S.outcome_of_json forged with
  | _ -> Alcotest.fail "schema mismatch must raise"
  | exception Json.Error _ -> ()

(* An unplaced auto job outside any fleet settles as a validation
   failure instead of running on an arbitrary device. *)
let test_auto_needs_fleet () =
  let job = solve ~id:"stray" ~prec:P.DD () in
  check "auto job validates" true (Job.validate job = Ok ())
  ;
  let attempts, _, _, status =
    Sched.Engine.settle ~backoff_ms:0.0 ~queued_at:0.0 job
  in
  checki "no attempts burned" 0 attempts;
  match status with
  | S.Failed f -> check "names the wildcard" true (f.S.retryable = false)
  | S.Completed _ -> Alcotest.fail "unplaced auto job must not run"

let () =
  Alcotest.run "fleet"
    [
      ( "placement",
        [
          Alcotest.test_case "roofline placement" `Quick test_placement;
          Alcotest.test_case "pinned device kept" `Quick
            test_pinned_device_kept;
        ] );
      ( "stealing",
        [
          Alcotest.test_case "steal invariants" `Quick test_steal_invariants;
          Alcotest.test_case "steal instant carries thief and owner" `Quick
            test_steal_instant_args;
          Alcotest.test_case "no stealing when disabled" `Quick test_no_steal;
        ] );
      ( "admission",
        [ Alcotest.test_case "backpressure" `Quick test_backpressure ] );
      ( "schema",
        [
          Alcotest.test_case "schema 6 round-trip" `Quick
            test_schema6_roundtrip;
          Alcotest.test_case "auto needs a fleet" `Quick test_auto_needs_fleet;
        ] );
    ]
