(* The solver-engine seam: method dispatch and codecs, engine agreement
   on executed problems, determinism of the iterative ladder, the
   schema-4 report round-trip with the solver record, and the job-level
   solver field's validation and JSON codec. *)

module P = Multidouble.Precision
module Solver = Lsq_core.Solver
module Json = Harness.Json
module Report = Harness.Report
module Job = Sched.Job

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- method dispatch ---- *)

let test_method_names () =
  List.iter
    (fun m -> check "name round-trips" true
        (Solver.method_of_string (Solver.method_name m) = m))
    Solver.all_methods;
  check "qr_direct alias" true (Solver.method_of_string "qr_direct" = Solver.Qr_direct);
  check "direct alias" true (Solver.method_of_string "direct" = Solver.Qr_direct);
  check "cgnr alias" true (Solver.method_of_string "cgnr" = Solver.Cg_normal);
  check "cg_normal alias" true
    (Solver.method_of_string "cg_normal" = Solver.Cg_normal);
  check "case-insensitive" true (Solver.method_of_string "LSQR" = Solver.Lsqr);
  (match Solver.method_of_string "cholesky" with
  | _ -> Alcotest.fail "unknown engine must raise"
  | exception Invalid_argument _ -> ());
  check "qr is direct" false (Solver.is_iterative Solver.Qr_direct);
  check "cg is iterative" true (Solver.is_iterative Solver.Cg_normal);
  check "lsqr is iterative" true (Solver.is_iterative Solver.Lsqr)

(* ---- engine agreement and determinism (executed) ---- *)

module K = Mdlinalg.Scalar.Dd
module S = Solver.Make (K)
module M = Mdlinalg.Mat.Make (K)
module V = Mdlinalg.Vec.Make (K)
module Rand = Mdlinalg.Randmat.Make (K)

let agreement_problem () =
  let rng = Dompool.Prng.create 1717 in
  let rows = 512 and cols = 16 in
  let a = Rand.matrix rng rows cols in
  let b, x_true = Rand.rhs_for rng a in
  let solve m =
    S.solve ~method_:m ~device:Gpusim.Device.v100 ~a:(M.copy a)
      ~b:(V.copy b) ~tile:16 ()
  in
  let err x =
    K.R.to_float (V.norm (V.sub x x_true)) /. K.R.to_float (V.norm x_true)
  in
  (solve, err)

let test_engines_agree () =
  let solve, err = agreement_problem () in
  List.iter
    (fun m ->
      let r = solve m in
      let e = err r.x in
      check
        (Printf.sprintf "%s reaches the known solution" (Solver.method_name m))
        true
        (e < 1e6 *. Multidouble.Double_double.eps);
      match r.iter with
      | None -> check "direct engine has no iter record" true (m = Solver.Qr_direct)
      | Some it ->
        check "iterative engine converged" true it.Solver.converged;
        check "ladder reaches the target" true
          (it.Solver.ladder <> []
          && fst (List.nth it.Solver.ladder (List.length it.Solver.ladder - 1))
             = P.DD))
    Solver.all_methods

let test_deterministic () =
  let solve, _ = agreement_problem () in
  List.iter
    (fun m ->
      let r1 = solve m and r2 = solve m in
      check
        (Printf.sprintf "%s solution is bit-identical" (Solver.method_name m))
        true (r1.x = r2.x);
      match (r1.iter, r2.iter) with
      | Some i1, Some i2 ->
        check "iteration counts repeat" true
          (i1.Solver.iterations = i2.Solver.iterations
          && i1.Solver.ladder = i2.Solver.ladder
          && i1.Solver.residual_history = i2.Solver.residual_history)
      | None, None -> ()
      | _ -> Alcotest.fail "iter record flickered between runs")
    [ Solver.Cg_normal; Solver.Lsqr ]

(* ---- report schema 4 ---- *)

let test_report_roundtrip () =
  checki "report schema is 4" 4 Report.schema_version;
  let r =
    Harness.Runners.solve ~method_:Solver.Lsqr ~rows:512 P.DD
      Gpusim.Device.v100 ~n:16 ~tile:16
  in
  check "iterative run attaches the solver record" true (r.Report.solver <> None);
  let r' = Report.of_json (Report.to_json r) in
  check "schema-4 report round-trips" true (r = r');
  (* A direct run keeps the solver field absent and round-trips too. *)
  let d = Harness.Runners.solve P.DD Gpusim.Device.v100 ~n:32 ~tile:8 in
  check "direct run has no solver record" true (d.Report.solver = None);
  check "direct report round-trips" true (d = Report.of_json (Report.to_json d));
  match Report.to_json r with
  | Json.Obj fields ->
    (match List.assoc "solver" fields with
    | Json.Obj sf ->
      checks "wire method name" "lsqr"
        (match List.assoc "method" sf with Json.Str s -> s | _ -> "?")
    | _ -> Alcotest.fail "solver field must be an object")
  | _ -> Alcotest.fail "report must serialize to an object"

(* ---- job codec and validation ---- *)

let job ?(solver = Solver.Qr_direct) ?(kind = Job.Solve) ?rows () =
  Job.make ~solver ?rows ~id:"j" ~kind ~device:"v100" ~prec:P.DD ~dim:64
    ~tile:16 ()

let test_job_codec () =
  let j = job ~solver:Solver.Lsqr ~rows:4096 () in
  let j' = Job.of_json (Job.to_json j) in
  check "job with solver round-trips" true (j = j');
  (* The default engine serializes exactly as before the seam: no
     "solver" key on the wire. *)
  (match Job.to_json (job ()) with
  | Json.Obj fields ->
    check "default engine stays off the wire" true
      (not (List.mem_assoc "solver" fields))
  | _ -> Alcotest.fail "job must serialize to an object");
  check "default engine round-trips" true
    (Job.of_json (Job.to_json (job ())) = job ());
  (* Unknown engine names are codec errors, not crashes. *)
  let forged =
    match Job.to_json (job ()) with
    | Json.Obj fields -> Json.Obj (("solver", Json.Str "cholesky") :: fields)
    | _ -> assert false
  in
  match Job.of_json forged with
  | _ -> Alcotest.fail "unknown solver must be a Json.Error"
  | exception Json.Error _ -> ()

let test_job_validation () =
  check "iterative solve job validates" true
    (Job.validate (job ~solver:Solver.Cg_normal ()) = Ok ());
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Job.validate (job ~solver:Solver.Lsqr ~kind:Job.Qr ()) with
  | Error m -> check "names the offender" true (contains m "solve")
  | Ok () -> Alcotest.fail "iterative solver on a qr job must be rejected");
  match Job.validate (job ~kind:Job.Backsub ~rows:128 ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rows on a backsub job must be rejected"

let () =
  Alcotest.run "solver-engine"
    [
      ( "dispatch",
        [ Alcotest.test_case "method names" `Quick test_method_names ] );
      ( "agreement",
        [
          Alcotest.test_case "engines agree" `Slow test_engines_agree;
          Alcotest.test_case "bit-deterministic" `Slow test_deterministic;
        ] );
      ( "codec",
        [
          Alcotest.test_case "report schema 4" `Quick test_report_roundtrip;
          Alcotest.test_case "job solver codec" `Quick test_job_codec;
          Alcotest.test_case "job validation" `Quick test_job_validation;
        ] );
    ]
