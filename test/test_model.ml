(* Calibration regression tests: the cost model's headline outputs are
   pinned to ranges bracketing the paper's measurements, so future
   changes to the model cannot silently destroy the reproduction
   (EXPERIMENTS.md documents the exact paper-vs-measured values). *)

module P = Multidouble.Precision
module R = Harness.Runners
module Rep = Harness.Report

let check = Alcotest.(check bool)
let v100 = Gpusim.Device.v100

let in_range what lo hi x =
  if not (x >= lo && x <= hi) then
    Alcotest.failf "%s: %g outside [%g, %g]" what x lo hi

(* ---- Table 3/4: QR at 1,024 ---- *)

let qr1024 p = R.qr p v100 ~n:1024 ~tile:128

let test_qr_teraflop () =
  (* The headline: teraflop performance at dimension 1,024 (paper: 2304
     GF at dd, 3214 at qd, 4100 at od on the V100). *)
  in_range "dd kernel flops" 1800.0 3200.0 (qr1024 P.DD).Rep.kernel_gflops;
  in_range "qd kernel flops" 2500.0 4200.0 (qr1024 P.QD).Rep.kernel_gflops;
  in_range "od kernel flops" 2500.0 4800.0 (qr1024 P.OD).Rep.kernel_gflops;
  (* performance increases with the precision (the CGMA argument) *)
  check "monotone in precision" true
    ((qr1024 P.D).Rep.kernel_gflops < (qr1024 P.DD).Rep.kernel_gflops
    && (qr1024 P.DD).Rep.kernel_gflops < (qr1024 P.QD).Rep.kernel_gflops)

let test_overhead_factors () =
  (* Paper: 7.1x and 3.7x on the V100, both under the predicted 11.7 and
     5.4 (the paper's central claim). *)
  let dd = (qr1024 P.DD).Rep.kernel_ms in
  let qd = (qr1024 P.QD).Rep.kernel_ms in
  let od = (qr1024 P.OD).Rep.kernel_ms in
  in_range "dd->qd overhead" 6.0 10.5 (qd /. dd);
  in_range "qd->od overhead" 3.5 5.4 (od /. qd);
  check "below predictions" true
    (qd /. dd < P.predicted_overhead ~lo:P.DD ~hi:P.QD
    && od /. qd < P.predicted_overhead ~lo:P.QD ~hi:P.OD)

let test_device_ordering () =
  (* Table 3's ordering: V100 < P100 << RTX 2080 < K20C < C2050. *)
  let t d = (R.qr P.DD d ~n:1024 ~tile:128).Rep.kernel_ms in
  let open Gpusim.Device in
  check "ordering" true
    (t v100 < t p100
    && t p100 < t rtx2080
    && t rtx2080 < t k20c
    && t k20c < t c2050);
  (* YWT*C dominates the small-cache C2050 (paper: 6068 of 8888 ms). *)
  let r = R.qr P.DD c2050 ~n:1024 ~tile:128 in
  let ywtc = List.assoc Lsq_core.Stage.ywtc (Rep.stage_ms r) in
  check "C2050 ywtc dominates" true (ywtc > 0.5 *. r.Rep.kernel_ms)

(* ---- Table 6: the double double collapse at 2,048 ---- *)

let test_dd_collapse () =
  let at p n = (R.qr p v100 ~n ~tile:128).Rep.kernel_ms in
  let dd_ratio = at P.DD 2048 /. at P.DD 1024 in
  let qd_ratio = at P.QD 2048 /. at P.QD 1024 in
  (* cubic growth alone is 8x; the paper sees ~113x for dd, ~11x for qd *)
  check "dd collapses" true (dd_ratio > 50.0);
  check "qd stays near-cubic" true (qd_ratio < 50.0);
  check "dd is the anomaly" true (dd_ratio > 2.0 *. qd_ratio)

let test_compute_w_dominates_small () =
  (* Paper §4.5: at dimension 512 the computation of W dominates. *)
  let r = R.qr P.QD v100 ~n:512 ~tile:128 in
  let w = List.assoc Lsq_core.Stage.compute_w (Rep.stage_ms r) in
  check "W dominates at 512" true (w > 0.4 *. r.Rep.kernel_ms);
  (* ... and no longer at 2,048 (the matrix products take over). *)
  let r = R.qr P.QD v100 ~n:2048 ~tile:128 in
  let w = List.assoc Lsq_core.Stage.compute_w (Rep.stage_ms r) in
  check "W recedes at 2048" true (w < 0.2 *. r.Rep.kernel_ms)

(* ---- Tables 7-9: back substitution ---- *)

let test_bs_teraflop_threshold () =
  (* Paper Table 8: ~1026 GF at n=224 (dimension 17,920), 1116 at 256. *)
  let at n = (R.bs P.QD v100 ~dim:(80 * n) ~tile:n).Rep.kernel_gflops in
  in_range "n=224" 800.0 1300.0 (at 224);
  in_range "n=256" 900.0 1500.0 (at 256);
  check "teraflops needs huge n" true (at 32 < 200.0 && at 224 > 800.0)

let test_bs_wall_dominated_by_transfers () =
  let r = R.bs P.QD v100 ~dim:20480 ~tile:256 in
  check "wall >> kernels" true (r.Rep.wall_ms > 5.0 *. r.Rep.kernel_ms)

let test_od_ram_anomaly () =
  (* Paper Table 7: the od wall clock explodes at 20,480 on the 32 GB
     host (84 s vs the 1.4 s trend). *)
  let small = (R.bs P.OD v100 ~dim:10240 ~tile:128).Rep.wall_ms in
  let big = (R.bs P.OD v100 ~dim:20480 ~tile:128).Rep.wall_ms in
  check "anomaly" true (big > 20.0 *. small);
  (* no anomaly on the 256 GB P100 host *)
  let p_small = (R.bs P.OD Gpusim.Device.p100 ~dim:10240 ~tile:128).Rep.wall_ms in
  let p_big = (R.bs P.OD Gpusim.Device.p100 ~dim:20480 ~tile:128).Rep.wall_ms in
  check "p100 host fine" true (p_big < 8.0 *. p_small)

let test_table9_wall_trend () =
  (* Bigger tiles: better wall clock at fixed dimension 20,480. *)
  let wall n = (R.bs P.QD v100 ~dim:20480 ~tile:n).Rep.wall_ms in
  check "wall decreasing" true (wall 64 > wall 128 && wall 128 > wall 256)

(* ---- Table 10: the solver ---- *)

let test_solver_ratio () =
  let r = R.solve P.QD v100 ~n:1024 ~tile:128 in
  let qr = Rep.part r R.qr_part and bs = Rep.part r R.bs_part in
  let ratio = qr.Rep.Part.kernel_ms /. bs.Rep.Part.kernel_ms in
  (* two orders of magnitude, not three (paper: ~108) *)
  in_range "QR/BS ratio" 15.0 300.0 ratio;
  in_range "solver kernel flops" 2500.0 4200.0 r.Rep.kernel_gflops

(* ---- structural invariants ---- *)

let test_qr_launch_count () =
  (* Per tile: 3 panel kernels per column, 2n-1 compute-W launches, the
     YWT product, 2 Q-update launches, and 2 trailing-update launches for
     all but the last tile. *)
  let n = 64 and tile = 16 in
  let nt = n / tile in
  let expected = (nt * ((3 * tile) + ((2 * tile) - 1) + 3)) + (2 * (nt - 1)) in
  let r = R.qr P.QD v100 ~n ~tile in
  Alcotest.(check int) "qr launches" expected r.Rep.launches

let () =
  Alcotest.run "cost model calibration"
    [
      ( "qr",
        [
          Alcotest.test_case "teraflop at 1024" `Quick test_qr_teraflop;
          Alcotest.test_case "overhead factors" `Quick test_overhead_factors;
          Alcotest.test_case "device ordering" `Quick test_device_ordering;
          Alcotest.test_case "dd collapse at 2048" `Quick test_dd_collapse;
          Alcotest.test_case "compute W dominance" `Quick
            test_compute_w_dominates_small;
          Alcotest.test_case "launch count" `Quick test_qr_launch_count;
        ] );
      ( "back substitution",
        [
          Alcotest.test_case "teraflop threshold" `Quick
            test_bs_teraflop_threshold;
          Alcotest.test_case "transfers dominate wall" `Quick
            test_bs_wall_dominated_by_transfers;
          Alcotest.test_case "od host-RAM anomaly" `Quick test_od_ram_anomaly;
          Alcotest.test_case "table 9 wall trend" `Quick
            test_table9_wall_trend;
        ] );
      ( "solver",
        [ Alcotest.test_case "qr/bs ratio and flops" `Quick test_solver_ratio ]
      );
    ]
