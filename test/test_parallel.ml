(* Tests for the parallel substrate: the domain pool (the engine under
   every simulated kernel launch) and the deterministic PRNG. *)

open Dompool

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 1000 do
    check "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 c then differs := true
  done;
  check "different seeds differ" true !differs

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 10000 do
    let f = Prng.float r in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let s = Prng.sym_float r in
    check "sym in [-1,1)" true (s >= -1.0 && s < 1.0);
    let i = Prng.int r 17 in
    check "int in range" true (i >= 0 && i < 17)
  done;
  (try
     ignore (Prng.int r 0);
     Alcotest.fail "int 0 accepted"
   with Invalid_argument _ -> ())

let test_prng_distribution () =
  (* Coarse uniformity: mean of [0,1) samples near 1/2. *)
  let r = Prng.create 99 in
  let n = 100000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float r
  done;
  let mean = !sum /. float_of_int n in
  check "mean near half" true (Float.abs (mean -. 0.5) < 0.01);
  (* All 64 bits toggle. *)
  let seen_or = ref 0L and seen_and = ref (-1L) in
  for _ = 1 to 1000 do
    let v = Prng.next_int64 r in
    seen_or := Int64.logor !seen_or v;
    seen_and := Int64.logand !seen_and v
  done;
  check "all bits set sometimes" true (!seen_or = -1L);
  check "no bit always set" true (!seen_and = 0L)

let test_prng_split () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  (* Child and parent streams decorrelate. *)
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr same
  done;
  checki "no collisions" 0 !same;
  (* Copy preserves state. *)
  let a = Prng.create 11 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check "copy same stream" true (Prng.next_int64 a = Prng.next_int64 b)

(* ---- domain pool ---- *)

let test_pool_runs_all () =
  let pool = Domain_pool.create 4 in
  let hits = Atomic.make 0 in
  let tasks = List.init 100 (fun _ () -> Atomic.incr hits) in
  Domain_pool.run pool tasks;
  checki "all tasks ran" 100 (Atomic.get hits);
  (* Reusable. *)
  Domain_pool.run pool tasks;
  checki "reusable" 200 (Atomic.get hits);
  Domain_pool.shutdown pool

let test_pool_parallel_for () =
  let pool = Domain_pool.create 4 in
  let n = 10000 in
  let marks = Array.make n 0 in
  Domain_pool.parallel_for pool 0 n (fun i -> marks.(i) <- marks.(i) + 1);
  check "each index exactly once" true (Array.for_all (fun x -> x = 1) marks);
  (* Empty and single ranges. *)
  Domain_pool.parallel_for pool 5 5 (fun _ -> Alcotest.fail "empty range");
  let hit = ref 0 in
  Domain_pool.parallel_for pool 3 4 (fun i ->
      hit := i);
  checki "single" 3 !hit;
  Domain_pool.shutdown pool

let test_pool_chunking () =
  let pool = Domain_pool.create 3 in
  let sum = Atomic.make 0 in
  Domain_pool.parallel_for ~chunk:7 pool 0 1000 (fun i ->
      ignore (Atomic.fetch_and_add sum i));
  checki "sum" (999 * 1000 / 2) (Atomic.get sum);
  Domain_pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Domain_pool.create 2 in
  (* A raising task surfaces on the submitting domain... *)
  let other = ref false in
  (try
     Domain_pool.run pool
       [ (fun () -> failwith "boom"); (fun () -> other := true) ];
     Alcotest.fail "exception swallowed"
   with Failure m -> check "original exception" true (m = "boom"));
  (* ...after the barrier: the sibling task still ran. *)
  check "sibling task completed" true !other;
  (* One exception surfaces even when every task raises. *)
  (try
     Domain_pool.run pool (List.init 8 (fun _ () -> failwith "multi"));
     Alcotest.fail "exception swallowed"
   with Failure m -> check "a task's exception" true (m = "multi"));
  (* The pool must not wedge or die: it is reusable afterwards. *)
  let ok = ref false in
  Domain_pool.run pool [ (fun () -> ok := true) ];
  check "pool survives exceptions" true !ok;
  Domain_pool.shutdown pool

let test_parallel_for_exception_propagates () =
  let pool = Domain_pool.create 3 in
  (* A raising iteration surfaces from parallel_for. *)
  (try
     Domain_pool.parallel_for ~chunk:1 pool 0 100 (fun i ->
         if i = 37 then failwith "iter boom");
     Alcotest.fail "exception swallowed"
   with Failure m -> check "original exception" true (m = "iter boom"));
  (* Sequential small-range path propagates directly too. *)
  (try
     Domain_pool.parallel_for pool 0 1 (fun _ -> failwith "seq boom");
     Alcotest.fail "exception swallowed"
   with Failure m -> check "sequential path" true (m = "seq boom"));
  (* Still fully functional afterwards. *)
  let n = 1000 in
  let marks = Array.make n 0 in
  Domain_pool.parallel_for ~chunk:7 pool 0 n (fun i ->
      marks.(i) <- marks.(i) + 1);
  check "pool still covers ranges" true (Array.for_all (fun x -> x = 1) marks);
  Domain_pool.shutdown pool

let test_pool_concurrent_failures () =
  (* Two tasks rendezvous so both are genuinely in flight, then both
     raise: the barrier must still release and exactly one of the two
     exceptions must surface on the submitter. *)
  let pool = Domain_pool.create 4 in
  if Domain.recommended_domain_count () >= 2 then begin
    let ready = Atomic.make 0 in
    let boom name () =
      Atomic.incr ready;
      (* Spin until the sibling is also inside its task, bounded so a
         single-core fallback (tasks run sequentially) cannot hang. *)
      let t0 = Unix.gettimeofday () in
      while Atomic.get ready < 2 && Unix.gettimeofday () -. t0 < 1.0 do
        Domain.cpu_relax ()
      done;
      failwith name
    in
    let ok = ref false in
    (match
       Domain_pool.run pool
         [ boom "first"; boom "second"; (fun () -> ok := true) ]
     with
    | () -> Alcotest.fail "both exceptions swallowed"
    | exception Failure m ->
      check "one of the two exceptions" true (m = "first" || m = "second"));
    check "sibling ok-task completed" true !ok
  end;
  (* parallel_for with simultaneous failing chunks behaves the same. *)
  let covered = Atomic.make 0 in
  (match
     Domain_pool.parallel_for ~chunk:1 pool 0 64 (fun i ->
         ignore (Atomic.fetch_and_add covered 1);
         if i mod 2 = 0 then failwith (Printf.sprintf "even %d" i))
   with
  | () -> Alcotest.fail "exceptions swallowed"
  | exception Failure m ->
    check "an even iteration's exception" true
      (String.length m > 5 && String.sub m 0 5 = "even "));
  (* The pool must neither wedge nor lose workers: it still covers a
     full range afterwards. *)
  let n = 500 in
  let marks = Array.make n 0 in
  Domain_pool.parallel_for ~chunk:3 pool 0 n (fun i ->
      marks.(i) <- marks.(i) + 1);
  check "pool reusable after concurrent failures" true
    (Array.for_all (fun x -> x = 1) marks);
  Domain_pool.shutdown pool

let test_pool_nested () =
  (* parallel_for from inside a pool task must not deadlock and must
     still cover the nested range. *)
  let pool = Domain_pool.create 3 in
  let outer = 6 and inner = 50 in
  let marks = Array.init outer (fun _ -> Array.make inner 0) in
  Domain_pool.parallel_for ~chunk:1 pool 0 outer (fun i ->
      Domain_pool.parallel_for ~chunk:5 pool 0 inner (fun j ->
          marks.(i).(j) <- marks.(i).(j) + 1));
  Array.iteri
    (fun i row ->
      check
        (Printf.sprintf "outer %d complete" i)
        true
        (Array.for_all (fun x -> x = 1) row))
    marks;
  (* nested run as well *)
  let hits = Atomic.make 0 in
  Domain_pool.run pool
    [
      (fun () ->
        Domain_pool.run pool
          [ (fun () -> Atomic.incr hits); (fun () -> Atomic.incr hits) ]);
      (fun () -> Atomic.incr hits);
    ];
  checki "nested run" 3 (Atomic.get hits);
  Domain_pool.shutdown pool

let test_pool_size_one () =
  (* A single-worker pool runs everything on the caller, in order. *)
  let pool = Domain_pool.create 1 in
  checki "size" 1 (Domain_pool.size pool);
  let order = ref [] in
  Domain_pool.parallel_for pool 0 5 (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "in order" [ 4; 3; 2; 1; 0 ] !order;
  Domain_pool.shutdown pool

let test_pool_actually_parallel () =
  (* With several workers, tasks overlap in time: measure that a barrier
     of sleeps finishes faster than serial execution would.  On a host
     with a single core there is nothing to overlap on, so only the
     completion of the work can be checked. *)
  if Domain.recommended_domain_count () < 2 then begin
    let pool = Domain_pool.create 4 in
    let hits = Atomic.make 0 in
    Domain_pool.run pool (List.init 8 (fun _ () -> Atomic.incr hits));
    Domain_pool.shutdown pool;
    checki "all ran (single core)" 8 (Atomic.get hits)
  end
  else begin
  let workers = 4 in
  let pool = Domain_pool.create workers in
  let spin () =
    (* ~10ms of busy work *)
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 0.01 do
      ()
    done
  in
  (* Measure serial first so the check is relative to this machine's
     current load rather than an absolute wall time. *)
  let t0 = Unix.gettimeofday () in
  List.iter (fun f -> f ()) (List.init 8 (fun _ -> spin));
  let serial = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  Domain_pool.run pool (List.init 8 (fun _ -> spin));
  let parallel = Unix.gettimeofday () -. t0 in
  Domain_pool.shutdown pool;
  check "overlapped" true (parallel < 0.8 *. serial)
  end

let () =
  Alcotest.run "parallel"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "distribution" `Quick test_prng_distribution;
          Alcotest.test_case "split/copy" `Quick test_prng_split;
        ] );
      ( "domain pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_pool_runs_all;
          Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "chunking" `Quick test_pool_chunking;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "parallel_for exceptions" `Quick
            test_parallel_for_exception_propagates;
          Alcotest.test_case "concurrent failures" `Quick
            test_pool_concurrent_failures;
          Alcotest.test_case "nested parallelism" `Quick test_pool_nested;
          Alcotest.test_case "size one" `Quick test_pool_size_one;
          Alcotest.test_case "overlaps work" `Slow test_pool_actually_parallel;
        ] );
    ]
