(* Tests for the fault-injection plane: plan configs and seeded draw
   streams, checksum and validator detectors, simulator-level
   retransfer/escalation, executed recovery through the runners, and
   the scheduler's retryable-vs-permanent failure classification. *)

module P = Multidouble.Precision
module Plan = Fault.Plan
module Checksum = Fault.Checksum
module Detect = Fault.Detect
module Sim = Gpusim.Sim
module Device = Gpusim.Device
module R = Harness.Runners
module Report = Harness.Report
module Json = Harness.Json
module Job = Sched.Job
module S = Sched.Scheduler

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let device = Device.v100

(* ---- plan configs ---- *)

let rejects what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s accepted" what

let test_config_validation () =
  rejects "NaN rate" (fun () -> Plan.config ~seed:1 ~rate:Float.nan ());
  rejects "negative rate" (fun () -> Plan.config ~seed:1 ~rate:(-0.1) ());
  rejects "rate above one" (fun () -> Plan.config ~seed:1 ~rate:1.5 ());
  rejects "empty kinds" (fun () ->
      Plan.config ~kinds:[] ~seed:1 ~rate:0.5 ());
  rejects "negative relaunch budget" (fun () ->
      Plan.config ~max_relaunches:(-1) ~seed:1 ~rate:0.5 ());
  rejects "negative replay budget" (fun () ->
      Plan.config ~max_replays:(-1) ~seed:1 ~rate:0.5 ());
  let c = Plan.config ~seed:7 ~rate:0.25 () in
  check "defaults: all kinds armed" true (c.Plan.kinds = Plan.all_kinds);
  checki "defaults: two relaunches" 2 c.Plan.max_relaunches;
  checki "defaults: two replays" 2 c.Plan.max_replays;
  (* The boundary rates are legal: 0 is an armed-but-silent plan. *)
  ignore (Plan.config ~seed:1 ~rate:0.0 ());
  ignore (Plan.config ~seed:1 ~rate:1.0 ())

let test_kind_names () =
  List.iter
    (fun k ->
      check
        ("round-trip " ^ Plan.kind_name k)
        true
        (Plan.kind_of_string (Plan.kind_name k) = k))
    Plan.all_kinds;
  check "bit-flip alias" true (Plan.kind_of_string "bit-flip" = Plan.Bitflip);
  check "launch-fail alias" true
    (Plan.kind_of_string "launch-fail" = Plan.Launch_fail);
  check "corrupt alias" true
    (Plan.kind_of_string "corrupt" = Plan.Transfer_corrupt);
  check "case and padding tolerated" true
    (Plan.kind_of_string " Flip " = Plan.Bitflip);
  rejects "unknown kind" (fun () -> Plan.kind_of_string "gamma-ray")

let draw_sequence ?salt cfg n =
  let p = Plan.arm ?salt cfg in
  List.init n (fun i -> Plan.draw_launch p ~can_corrupt:(i mod 2 = 0))

let test_draw_determinism () =
  let cfg = Plan.config ~seed:42 ~rate:0.5 () in
  check "same seed, same strikes" true
    (draw_sequence cfg 200 = draw_sequence cfg 200);
  check "salt decorrelates the stream" true
    (draw_sequence cfg 200 <> draw_sequence ~salt:1 cfg 200);
  check "different seeds differ" true
    (draw_sequence cfg 200
    <> draw_sequence (Plan.config ~seed:43 ~rate:0.5 ()) 200);
  (* Rate 0 never strikes; rate 1 with one armed kind always does. *)
  let silent = Plan.arm (Plan.config ~seed:3 ~rate:0.0 ()) in
  check "rate 0 never strikes" true
    (List.for_all
       (fun o -> o = None)
       (List.init 100 (fun _ -> Plan.draw_launch silent ~can_corrupt:true)));
  let always =
    Plan.arm (Plan.config ~kinds:[ Plan.Launch_fail ] ~seed:3 ~rate:1.0 ())
  in
  check "rate 1 always strikes" true
    (List.for_all
       (fun o -> o = Some Plan.Launch_fail)
       (List.init 100 (fun _ -> Plan.draw_launch always ~can_corrupt:false)));
  (* Bitflips need a corruptor: with none registered the draw cannot
     pick one, so a bitflip-only plan never strikes launches. *)
  let flips_only =
    Plan.arm (Plan.config ~kinds:[ Plan.Bitflip ] ~seed:3 ~rate:1.0 ())
  in
  check "bitflip needs can_corrupt" true
    (List.for_all
       (fun o -> o = None)
       (List.init 50 (fun _ -> Plan.draw_launch flips_only ~can_corrupt:false)));
  let transfers =
    Plan.arm (Plan.config ~kinds:[ Plan.Transfer_corrupt ] ~seed:3 ~rate:1.0 ())
  in
  check "transfer draws corrupt transfers" true
    (Plan.draw_transfer transfers = Some Plan.Transfer_corrupt);
  check "launch-only plans spare transfers" true
    (Plan.draw_transfer always = None)

let test_tally () =
  let p = Plan.arm (Plan.config ~seed:1 ~rate:0.5 ()) in
  check "fresh plan starts at zero" true (Plan.snapshot p = Plan.zero_tally);
  Plan.note_launch_fail p ~stage:"beta";
  Plan.note_relaunch p ~stage:"beta";
  Plan.note_bitflip p ~stage:"vb";
  Plan.note_detected p ~stage:"vb";
  Plan.note_replay p ~stage:"vb";
  Plan.note_transfer_fault p;
  Plan.note_retransfer p;
  Plan.note_escalation p ~stage:"beta";
  let t = Plan.snapshot p in
  checki "bitflips" 1 t.Plan.bitflips;
  checki "launch fails" 1 t.Plan.launch_fails;
  checki "transfer faults" 1 t.Plan.transfer_faults;
  (* Launch failures and transfer corruption are always observed, so
     they count as detections alongside the explicit detector hit. *)
  checki "detected" 3 t.Plan.detected;
  checki "relaunches" 1 t.Plan.relaunches;
  checki "retransfers" 1 t.Plan.retransfers;
  checki "replays" 1 t.Plan.replays;
  checki "escalations" 1 t.Plan.escalations;
  checki "injected sums the kinds" 3 (Plan.injected t);
  checki "recovered sums the recoveries" 3 (Plan.recovered t);
  check "merge with zero is identity" true (Plan.merge Plan.zero_tally t = t);
  checki "merge adds" 6 (Plan.injected (Plan.merge t t))

let test_flip_bit () =
  check "flipping changes the value" true (Plan.flip_bit 1.0 52 <> 1.0);
  check "sign bit negates" true (Plan.flip_bit 1.0 63 = -1.0);
  List.iter
    (fun bit ->
      List.iter
        (fun x ->
          check "flip is an involution" true
            (Plan.flip_bit (Plan.flip_bit x bit) bit = x))
        [ 1.0; -3.25; 1e-30; 0.0 ])
    [ 0; 17; 51; 52; 62; 63 ]

(* ---- detectors ---- *)

let test_checksum_detects_flips () =
  let data = Array.init 64 (fun i -> sin (float_of_int i) *. 1e3) in
  let digest = Checksum.of_array data in
  check "identical data matches" true
    (Checksum.matches digest (Checksum.of_array (Array.copy data)));
  checki "count recorded" 64 digest.Checksum.count;
  List.iter
    (fun (i, bit) ->
      let corrupt = Array.copy data in
      corrupt.(i) <- Plan.flip_bit corrupt.(i) bit;
      check
        (Printf.sprintf "flip of bit %d at %d detected" bit i)
        false
        (Checksum.matches digest (Checksum.of_array corrupt)))
    [ (1, 0); (13, 1); (31, 52); (63, 62); (40, 63) ];
  (* A swap preserves the plain sum; the index weighting catches it. *)
  let swapped = Array.copy data in
  let tmp = swapped.(3) in
  swapped.(3) <- swapped.(40);
  swapped.(40) <- tmp;
  check "swap detected" false
    (Checksum.matches digest (Checksum.of_array swapped))

let test_checksum_planes_and_scalars () =
  let a = Array.init 16 (fun i -> float_of_int (i + 1)) in
  let b = Array.init 16 (fun i -> 1.0 /. float_of_int (i + 1)) in
  check "planes digest = flattened digest" true
    (Checksum.matches
       (Checksum.of_planes [| a; b |])
       (Checksum.of_array (Array.append a b)));
  let to_planes x = [| x; x *. 0x1p-60 |] in
  let xs = Array.init 8 (fun i -> cos (float_of_int i)) in
  let digest = Checksum.of_scalars ~to_planes xs in
  check "scalar digest reproducible" true
    (Checksum.matches digest (Checksum.of_scalars ~to_planes xs));
  let corrupt = Array.copy xs in
  corrupt.(5) <- Plan.flip_bit corrupt.(5) 3;
  check "scalar limb flip detected" false
    (Checksum.matches digest (Checksum.of_scalars ~to_planes corrupt));
  (* NaN-safe: a digest over NaN data still matches itself bit-wise. *)
  let poisoned = [| 1.0; Float.nan; 3.0 |] in
  check "NaN digests compare bit-wise" true
    (Checksum.matches (Checksum.of_array poisoned)
       (Checksum.of_array (Array.copy poisoned)))

let test_validators () =
  check "finite accepts finite data" true (Detect.finite [| 1.0; -2.5; 0.0 |]);
  check "finite rejects NaN" false (Detect.finite [| 1.0; Float.nan |]);
  check "finite rejects infinity" false
    (Detect.finite [| Float.infinity; 0.0 |]);
  check "finite_planes checks every plane" false
    (Detect.finite_planes [| [| 1.0 |]; [| Float.nan |] |]);
  check "finite_planes accepts" true
    (Detect.finite_planes [| [| 1.0 |]; [| 2.0 |] |]);
  check "normalized accepts a clean expansion" true
    (Detect.normalized [| 1.0; 0x1p-53; 0x1p-107 |]);
  check "normalized accepts trailing zeros" true
    (Detect.normalized [| 1.0; 0x1p-53; 0.0; 0.0 |]);
  check "normalized accepts all zeros" true (Detect.normalized [| 0.0; 0.0 |]);
  check "overlapping limbs rejected" false (Detect.normalized [| 1.0; 0.5 |]);
  check "misordered limbs rejected" false (Detect.normalized [| 0x1p-53; 1.0 |]);
  check "resurrected limb after zero rejected" false
    (Detect.normalized [| 1.0; 0.0; 1e-60 |]);
  check "non-finite limb rejected" false (Detect.normalized [| Float.nan |]);
  (* The renormalizer's output must always satisfy the validator — this
     is the invariant the bit-flip detectors probe. *)
  let raw = [| 1.0; 0.5; 0.25; 1e-10; -3e-11; 7e-22; 0.0; 1e-30 |] in
  let settled =
    Multidouble.Renorm.renormalize ~m:4
      (Multidouble.Renorm.renormalize ~m:8 raw)
  in
  check "renormalized data passes" true (Detect.normalized settled)

(* ---- simulator fault paths ---- *)

let transfer_sim cfg =
  Sim.create ~execute:false ?fault:cfg ~device ~prec:P.DD ()

let test_sim_retransfers () =
  (* Rate 1 with budget 2: every transfer strikes three times (initial
     plus two retransfers), then escalates out of the simulator. *)
  let cfg =
    Plan.config ~kinds:[ Plan.Transfer_corrupt ] ~max_relaunches:2 ~seed:5
      ~rate:1.0 ()
  in
  let sim = transfer_sim (Some cfg) in
  (match Sim.transfer sim 1e6 with
  | exception Plan.Injected (Plan.Transfer_corrupt, _) -> ()
  | () -> Alcotest.fail "exhausted retransfer budget did not escalate");
  (match Sim.fault_tally sim with
  | Some t ->
    checki "three corrupted transfers" 3 t.Plan.transfer_faults;
    checki "two retransfers" 2 t.Plan.retransfers;
    checki "one escalation" 1 t.Plan.escalations
  | None -> Alcotest.fail "armed simulator lost its tally");
  (* A mild rate recovers every strike within the budget and the
     retransfer time lands in the wall clock. *)
  let mild =
    transfer_sim
      (Some
         (Plan.config ~kinds:[ Plan.Transfer_corrupt ] ~max_relaunches:8
            ~seed:17 ~rate:0.4 ()))
  in
  for _ = 1 to 50 do
    Sim.transfer mild 1e6
  done;
  (match Sim.fault_tally mild with
  | Some t ->
    check "strikes happened" true (t.Plan.transfer_faults > 0);
    checki "every strike retransferred" t.Plan.transfer_faults
      t.Plan.retransfers;
    checki "no escalation" 0 t.Plan.escalations
  | None -> Alcotest.fail "armed simulator lost its tally");
  let clean = transfer_sim None in
  for _ = 1 to 50 do
    Sim.transfer clean 1e6
  done;
  check "faulted transfers cost more wall clock" true
    (Sim.wall_ms mild > Sim.wall_ms clean);
  check "unarmed simulator has no tally" true (Sim.fault_tally clean = None)

(* ---- runners under fault ---- *)

let test_plan_runner_tallies () =
  let cfg kinds rate =
    Plan.config ~kinds ~max_relaunches:16 ~seed:23 ~rate ()
  in
  let faulted = R.qr ~fault:(cfg [ Plan.Launch_fail ] 0.2) P.DD device ~n:128 ~tile:32 in
  (match faulted.Report.faults with
  | Some f ->
    check "launch failures injected" true (f.Report.launch_fails > 0);
    checki "all relaunched within budget" f.Report.launch_fails
      f.Report.relaunches;
    checki "nothing escalated" 0 f.Report.escalations;
    checki "no bitflips from a launch-only plan" 0 f.Report.bitflips;
    check "refinement never ran in plan mode" false f.Report.refined
  | None -> Alcotest.fail "armed run carries no fault record");
  let again = R.qr ~fault:(cfg [ Plan.Launch_fail ] 0.2) P.DD device ~n:128 ~tile:32 in
  check "campaign replays bit-identically" true
    (faulted.Report.faults = again.Report.faults
    && faulted.Report.wall_ms = again.Report.wall_ms);
  (* Relaunches are charged to the cost model. *)
  let clean = R.qr P.DD device ~n:128 ~tile:32 in
  check "clean run carries no fault record" true (clean.Report.faults = None);
  check "relaunches cost kernel time" true
    (faulted.Report.kernel_ms > clean.Report.kernel_ms);
  (* An armed-but-silent plan (rate 0) tallies nothing; it still pays
     for the ABFT check kernels arming adds, but not for recovery. *)
  let silent = R.qr ~fault:(cfg Plan.all_kinds 0.0) P.DD device ~n:128 ~tile:32 in
  (match silent.Report.faults with
  | Some f -> checki "rate 0 injects nothing" 0 (Report.faults_injected f)
  | None -> Alcotest.fail "armed run carries no fault record");
  check "rate 0 pays only the check kernels" true
    (silent.Report.wall_ms >= clean.Report.wall_ms
    && silent.Report.wall_ms < faulted.Report.wall_ms);
  (* Plan mode never executes, so a bitflip-only plan cannot strike. *)
  let flips = R.bs ~fault:(cfg [ Plan.Bitflip ] 1.0) P.DD device ~dim:128 ~tile:32 in
  match flips.Report.faults with
  | Some f -> checki "no bitflips without execution" 0 (Report.faults_injected f)
  | None -> Alcotest.fail "armed run carries no fault record"

let test_plan_runner_escalates () =
  let cfg =
    Plan.config ~kinds:[ Plan.Launch_fail ] ~max_relaunches:1 ~seed:2
      ~rate:1.0 ()
  in
  match R.qr ~fault:cfg P.DD device ~n:64 ~tile:32 with
  | exception Plan.Injected (Plan.Launch_fail, _) -> ()
  | _ -> Alcotest.fail "rate-1 launch failures did not escalate"

let test_executed_recovery_is_exact () =
  (* Launch failures strike before the kernel body runs, so a recovered
     run executes every body exactly once: the residual must be
     bit-identical to the clean run's. *)
  let clean = R.verify_qr P.DD device ~n:16 ~tile:4 in
  let faulted =
    R.verify_qr
      ~fault:
        (Plan.config ~kinds:[ Plan.Launch_fail ] ~max_relaunches:16 ~seed:9
           ~rate:0.2 ())
      P.DD device ~n:16 ~tile:4
  in
  check "clean verification passes" true clean.Report.ok;
  check "recovered run is bit-identical to the clean run" true
    (faulted = clean)

let test_solve_ft () =
  let clean = R.solve_ft P.DD device ~n:32 ~tile:8 in
  check "clean solve_ft has no fault record" true (clean.Report.faults = None);
  check "clean solve_ft passes" true
    (match clean.Report.residual with Some v -> v.Report.ok | None -> false);
  let cfg seed = Plan.config ~seed ~rate:1e-2 () in
  let first = R.solve_ft ~fault:(cfg 11) P.DD device ~n:32 ~tile:8 in
  check "faulted solve recovers" true
    (match first.Report.residual with Some v -> v.Report.ok | None -> false);
  check "faulted solve carries its tally" true
    (first.Report.faults <> None);
  let second = R.solve_ft ~fault:(cfg 11) P.DD device ~n:32 ~tile:8 in
  check "solve_ft replays bit-identically" true
    (first.Report.faults = second.Report.faults
    && first.Report.residual = second.Report.residual);
  (* A pure bit-flip campaign at a heavy rate: corruption is injected
     into live data and the final verdict still passes. *)
  let flips =
    R.solve_ft
      ~fault:(Plan.config ~kinds:[ Plan.Bitflip ] ~seed:29 ~rate:0.05 ())
      P.DD device ~n:32 ~tile:8
  in
  (match flips.Report.faults with
  | Some f -> check "bitflips struck" true (f.Report.bitflips > 0)
  | None -> Alcotest.fail "armed run carries no fault record");
  check "bitflip campaign recovers" true
    (match flips.Report.residual with Some v -> v.Report.ok | None -> false)

let test_od_flat_fault () =
  (* Octo double executes on the flat limb planes since the limb-generic
     kernel plane landed: the bit-flip corruptor strikes the raw staged
     planes and the ABFT checksums digest those same planes, so the
     detect/recover ladder must work unchanged at m = 8. *)
  check "od runs the flat path" true
    (Mdlinalg.Scalar.Od.flat_ok
    && Multidouble.Nd_flat.supported Mdlinalg.Scalar.Od.width);
  let flips =
    R.solve_ft
      ~fault:(Plan.config ~kinds:[ Plan.Bitflip ] ~seed:23 ~rate:0.05 ())
      P.OD device ~n:16 ~tile:4
  in
  (match flips.Report.faults with
  | Some f -> check "bitflips struck the od planes" true (f.Report.bitflips > 0)
  | None -> Alcotest.fail "armed od run carries no fault record");
  check "od bitflip campaign recovers" true
    (match flips.Report.residual with Some v -> v.Report.ok | None -> false)

let test_od_bigarray_corrupt_detected () =
  (* The staged planes live in Bigarray storage: a raw [Bs.corrupt]
     strike on the flat arm must mutate exactly the words
     [Bs.iter_u_limbs] feeds the checksum, U flips convicting the digest
     and b/x flips leaving it untouched — the contract the stage-2
     detect/recover ladder stands on. *)
  let module K = Mdlinalg.Scalar.Od in
  let module F = Mdlinalg.Flat_kernels.Make (K) in
  let dim = 6 in
  let rng = Dompool.Prng.create 71 in
  let el () = K.of_float (Dompool.Prng.sym_float rng) in
  let v = Array.init (dim * dim) (fun _ -> el ()) in
  let bd = Array.init dim (fun _ -> el ()) in
  let x = Array.make dim K.zero in
  let struck_u = ref 0 in
  (* Fresh state per trial: one strike against a clean digest. *)
  for _ = 1 to 24 do
    let st = F.Bs.create ~execute:true ~dim ~v ~bd ~x in
    let digest = Fault.Checksum.of_iter (F.Bs.iter_u_limbs st) in
    check "digest reproducible" true
      (Fault.Checksum.matches digest
         (Fault.Checksum.of_iter (F.Bs.iter_u_limbs st)));
    let where = F.Bs.corrupt st rng ~flip:Plan.flip_bit in
    let now = Fault.Checksum.of_iter (F.Bs.iter_u_limbs st) in
    if String.length where > 0 && where.[0] = 'U' then begin
      incr struck_u;
      check
        (Printf.sprintf "U strike convicts the digest (%s)" where)
        false
        (Fault.Checksum.matches digest now)
    end
    else
      check
        (Printf.sprintf "b/x strike leaves U digest intact (%s)" where)
        true
        (Fault.Checksum.matches digest now)
  done;
  check "campaign struck U at least once" true (!struck_u > 0)

(* ---- scheduler classification and job validation ---- *)

let solve_job ?(rate = 0.0) ?(seed = 1) ~id () =
  Job.make ~execute:true ~fault_rate:rate ~fault_seed:seed ~id ~kind:Job.Solve
    ~device:"v100" ~prec:P.DD ~dim:32 ~tile:8 ()

let qr_job ?retries ?inject_failures ?timeout_ms ?tile ~id () =
  Job.make ?retries ?inject_failures ?timeout_ms ~id ~kind:Job.Qr
    ~device:"v100" ~prec:P.DD ~dim:64
    ~tile:(Option.value tile ~default:32)
    ()

let invalid what job =
  match Job.validate job with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s validated" what

let test_job_validation () =
  invalid "NaN timeout"
    (qr_job ~timeout_ms:Float.nan ~id:"nan-timeout" ());
  invalid "negative timeout" (qr_job ~timeout_ms:(-5.0) ~id:"neg-timeout" ());
  invalid "NaN fault rate" (solve_job ~rate:Float.nan ~id:"nan-rate" ());
  invalid "negative fault rate" (solve_job ~rate:(-0.5) ~id:"neg-rate" ());
  invalid "fault rate above one" (solve_job ~rate:1.5 ~id:"big-rate" ());
  invalid "armed plan with no kinds"
    (Job.make ~fault_rate:0.5 ~fault_kinds:[] ~id:"no-kinds" ~kind:Job.Qr
       ~device:"v100" ~prec:P.DD ~dim:64 ~tile:32 ());
  (match Job.validate (solve_job ~rate:0.01 ~id:"armed" ()) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid armed job rejected: %s" m);
  check "rate 0 leaves the plane disarmed" true
    (Job.fault_config (solve_job ~id:"clean" ()) = None);
  check "positive rate arms the plane" true
    (Job.fault_config (solve_job ~rate:0.01 ~id:"armed" ()) <> None)

let failed o =
  match o.S.status with
  | S.Failed f -> f
  | S.Completed _ -> Alcotest.failf "%s unexpectedly completed" o.S.job.Job.id

let test_failure_classification () =
  (* The injection hook models a transient fault: retryable, burns the
     retry budget. *)
  (match
     S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ())
       [ qr_job ~retries:1 ~inject_failures:99 ~id:"transient" () ]
   with
  | [ o ] ->
    let f = failed o in
    check "injected failures are retryable" true f.S.retryable;
    check "not a timeout" false f.S.timed_out;
    checki "retries burned" 2 o.S.attempts
  | _ -> Alcotest.fail "expected one outcome");
  (* Validation failures are permanent: no attempt, no retry. *)
  (match
     S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ())
       [ qr_job ~tile:30 ~id:"permanent" () ]
   with
  | [ o ] ->
    let f = failed o in
    check "validation failures are permanent" false f.S.retryable;
    checki "never attempted" 0 o.S.attempts
  | _ -> Alcotest.fail "expected one outcome");
  (* Exhausted timeouts are permanent too. *)
  match
    S.run (S.Config.batch ~parallel:1 ~backoff_ms:5.0 ())
      [
        qr_job ~retries:5 ~inject_failures:99 ~timeout_ms:1.0 ~id:"deadline" ();
      ]
  with
  | [ o ] ->
    let f = failed o in
    check "timed out" true f.S.timed_out;
    check "timeouts are permanent" false f.S.retryable
  | _ -> Alcotest.fail "expected one outcome"

let test_faulted_job_completes () =
  (* An executed solve job with an armed fault plane dispatches to the
     fault-tolerant solver and lands a report with the tally. *)
  let r = S.run_job (solve_job ~rate:1e-2 ~seed:11 ~id:"ft-solve" ()) in
  check "fault tally attached" true (r.Report.faults <> None);
  check "residual passes" true
    (match r.Report.residual with Some v -> v.Report.ok | None -> false);
  let clean = S.run_job (solve_job ~id:"clean-solve" ()) in
  check "clean job carries no fault record" true (clean.Report.faults = None)

let test_serialization () =
  (* Outcomes round-trip with the classification flag, for both values. *)
  let outcomes =
    S.run (S.Config.batch ~parallel:1 ~backoff_ms:0.0 ())
      [
        qr_job ~retries:0 ~inject_failures:99 ~id:"retryable" ();
        qr_job ~tile:30 ~id:"permanent" ();
        qr_job ~id:"ok" ();
      ]
  in
  List.iter
    (fun o ->
      check "outcome round-trips" true
        (S.outcome_of_json (S.outcome_to_json o) = o))
    outcomes;
  check "both classifications covered" true
    ((failed (List.nth outcomes 0)).S.retryable
    && not (failed (List.nth outcomes 1)).S.retryable);
  (* Fault fields only serialize when the plane is armed, so clean job
     documents are unchanged from the pre-fault schema. *)
  let keys j =
    match Job.to_json j with
    | Json.Obj fields -> List.map fst fields
    | _ -> Alcotest.fail "job is not an object"
  in
  check "clean jobs have no fault keys" false
    (List.exists
       (fun k -> List.mem k (keys (solve_job ~id:"clean" ())))
       [ "fault_rate"; "fault_seed"; "fault_kinds" ]);
  let armed =
    Job.make ~execute:true ~fault_rate:0.05 ~fault_seed:99
      ~fault_kinds:[ Plan.Bitflip; Plan.Launch_fail ] ~id:"armed"
      ~kind:Job.Solve ~device:"v100" ~prec:P.QD ~dim:32 ~tile:8 ()
  in
  check "armed jobs serialize the plane" true
    (List.mem "fault_rate" (keys armed));
  check "armed job round-trips" true (Job.of_json (Job.to_json armed) = armed);
  (match
     Job.of_json
       (Json.of_string
          {|{"id": "bad", "kind": "qr", "device": "v100", "prec": "2d",
             "dim": 64, "tile": 16, "fault_rate": 0.5,
             "fault_kinds": ["gamma-ray"]}|})
   with
  | exception Json.Error _ -> ()
  | _ -> Alcotest.fail "unknown fault kind accepted");
  let j =
    Job.of_json
      (Json.of_string
         {|{"id": "named", "kind": "solve", "device": "v100", "prec": "2d",
            "dim": 32, "tile": 8, "fault_rate": 0.25, "fault_seed": 4,
            "fault_kinds": ["launch", "transfer"]}|})
  in
  check "named kinds parse" true
    (j.Job.fault_kinds = [ Plan.Launch_fail; Plan.Transfer_corrupt ]
    && j.Job.fault_rate = 0.25 && j.Job.fault_seed = 4)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "kind names" `Quick test_kind_names;
          Alcotest.test_case "draw determinism" `Quick test_draw_determinism;
          Alcotest.test_case "tally accounting" `Quick test_tally;
          Alcotest.test_case "flip_bit" `Quick test_flip_bit;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "checksum detects flips" `Quick
            test_checksum_detects_flips;
          Alcotest.test_case "checksum planes and scalars" `Quick
            test_checksum_planes_and_scalars;
          Alcotest.test_case "validators" `Quick test_validators;
        ] );
      ( "simulator",
        [ Alcotest.test_case "retransfers" `Quick test_sim_retransfers ] );
      ( "runners",
        [
          Alcotest.test_case "plan-mode tallies" `Quick
            test_plan_runner_tallies;
          Alcotest.test_case "plan-mode escalation" `Quick
            test_plan_runner_escalates;
          Alcotest.test_case "executed recovery is exact" `Quick
            test_executed_recovery_is_exact;
          Alcotest.test_case "fault-tolerant solve" `Quick test_solve_ft;
          Alcotest.test_case "od bitflips over the flat path" `Quick
            test_od_flat_fault;
          Alcotest.test_case "raw strikes on Bigarray planes detected" `Quick
            test_od_bigarray_corrupt_detected;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "job validation" `Quick test_job_validation;
          Alcotest.test_case "failure classification" `Quick
            test_failure_classification;
          Alcotest.test_case "faulted job completes" `Quick
            test_faulted_job_completes;
          Alcotest.test_case "serialization" `Quick test_serialization;
        ] );
    ]
