(* Tests for the GPU simulator substrate: device catalog, occupancy and
   wave quantization, the roofline kernel-time model, the transfer and
   host-pressure models, operation counters and per-stage profiles, and
   the execution semantics of the simulator itself. *)

open Gpusim
module P = Multidouble.Precision

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- devices ---- *)

let test_catalog () =
  checki "five devices" 5 (List.length Device.catalog);
  let v = Device.by_name "v100" in
  checki "v100 sms" 80 v.Device.sm_count;
  checki "v100 cores" 5120 (Device.cores v);
  let r = Device.by_name "RTX 2080" in
  checki "rtx sms" 46 r.Device.sm_count;
  (try
     ignore (Device.by_name "a100");
     Alcotest.fail "unknown device accepted"
   with Invalid_argument _ -> ());
  (* Table 2 data *)
  List.iter
    (fun (name, mp, cores_mp) ->
      let d = Device.by_name name in
      checki (name ^ " mp") mp d.Device.sm_count;
      checki (name ^ " cores/mp") cores_mp d.Device.cores_per_sm)
    [
      ("c2050", 14, 32); ("k20c", 13, 192); ("p100", 56, 64);
      ("v100", 80, 64); ("rtx2080", 46, 64);
    ]

let test_peaks () =
  (* The theoretical double precision peaks quoted in the paper: 4.7 and
     7.9 teraflops, ratio 1.68. *)
  let p = Device.p100 and v = Device.v100 in
  check "p100 peak" true (Float.abs (p.Device.dp_peak_gflops -. 4700.0) < 1.0);
  check "v100 peak" true (Float.abs (v.Device.dp_peak_gflops -. 7900.0) < 1.0);
  check "ratio 1.68" true
    (Float.abs ((v.Device.dp_peak_gflops /. p.Device.dp_peak_gflops) -. 1.68)
    < 0.01)

(* ---- occupancy ---- *)

let test_occupancy_bounds () =
  List.iter
    (fun d ->
      List.iter
        (fun blocks ->
          List.iter
            (fun threads ->
              let o = Cost.occupancy d ~blocks ~threads in
              check "in (0, 1]" true (o > 0.0 && o <= 1.0))
            [ 1; 32; 33; 128; 256 ])
        [ 1; 2; 80; 81; 4096 ])
    Device.catalog

let test_occupancy_monotone_blocks () =
  (* With a full wave, more blocks never hurt. *)
  let d = Device.v100 in
  let o80 = Cost.occupancy d ~blocks:80 ~threads:256 in
  let o160 = Cost.occupancy d ~blocks:160 ~threads:256 in
  let o640 = Cost.occupancy d ~blocks:640 ~threads:256 in
  check "80 full" true (o80 >= 0.99);
  check "160 full" true (o160 >= 0.99);
  check "640 full" true (o640 >= 0.99)

let test_wave_quantization () =
  (* 80 blocks fill the V100 exactly but leave the P100's second wave
     mostly idle — the paper's explanation of the Table 8 gap. *)
  let v = Cost.occupancy Device.v100 ~blocks:80 ~threads:256 in
  let p = Cost.occupancy Device.p100 ~blocks:80 ~threads:256 in
  check "v100 full" true (v >= 0.99);
  check "p100 second wave" true (p < 0.75 && p > 0.6)

let test_warp_rounding () =
  (* With latency hiding saturated (many blocks), a 33-thread block wastes
     almost half of each second warp. *)
  let d = Device.v100 in
  let o32 = Cost.occupancy d ~blocks:4096 ~threads:32 in
  let o33 = Cost.occupancy d ~blocks:4096 ~threads:33 in
  check "33 threads waste a warp" true (o33 < 0.6 *. o32)

let test_latency_hiding () =
  (* One warp per SM cannot hide latency; many can. *)
  let d = Device.v100 in
  let one = Cost.occupancy d ~blocks:80 ~threads:32 in
  let many = Cost.occupancy d ~blocks:80 ~threads:256 in
  check "hiding grows" true (many > 2.0 *. one)

(* ---- kernel time ---- *)

let ops n = Counter.make ~adds:n ~muls:n ()

let big_launch ?(strided = false) ?(working_set = 0.0) ?(thread_bytes = 0.0)
    n =
  Cost.launch ~blocks:4096 ~threads:256 ~strided ~working_set ~thread_bytes
    (ops n)

let test_kernel_time_monotone () =
  let d = Device.v100 in
  let t1 = Cost.kernel_ms d P.QD (big_launch 1e6) in
  let t2 = Cost.kernel_ms d P.QD (big_launch 1e7) in
  let t3 = Cost.kernel_ms d P.QD (big_launch 1e8) in
  check "monotone" true (t1 < t2 && t2 < t3)

let test_kernel_time_precision () =
  (* Same operation count costs more at higher precision. *)
  let d = Device.v100 in
  let l = big_launch 1e7 in
  let td = Cost.kernel_ms d P.D l in
  let tdd = Cost.kernel_ms d P.DD l in
  let tqd = Cost.kernel_ms d P.QD l in
  let tod = Cost.kernel_ms d P.OD l in
  check "ordered" true (td < tdd && tdd < tqd && tqd < tod);
  (* The compute-bound ratios approach the Table 1 work ratios. *)
  let r = tqd /. tdd in
  check "qd/dd near work ratio" true (r > 5.0 && r < 15.0)

let test_launch_overhead () =
  let d = Device.v100 in
  let empty = Cost.launch ~blocks:1 ~threads:32 (ops 0.0) in
  let t = Cost.kernel_ms d P.QD empty in
  check "at least the launch overhead" true
    (t >= d.Device.launch_us /. 1e3);
  let five = Cost.launch ~count:5 ~blocks:1 ~threads:32 (ops 0.0) in
  let t5 = Cost.kernel_ms d P.QD five in
  check "count multiplies overhead" true
    (Float.abs (t5 -. (5.0 *. t)) < 1e-9)

let test_cache_spill () =
  let d = Device.v100 in
  let bytes = 1e9 in
  let fits =
    Cost.kernel_ms d P.DD
      (big_launch ~strided:true ~working_set:1e6 ~thread_bytes:bytes 1.0)
  in
  let spilled =
    Cost.kernel_ms d P.DD
      (big_launch ~strided:true ~working_set:1e9 ~thread_bytes:bytes 1.0)
  in
  let streamed =
    Cost.kernel_ms d P.DD
      (big_launch ~strided:false ~working_set:1e9 ~thread_bytes:bytes 1.0)
  in
  check "spill is slower" true (spilled > 5.0 *. fits);
  check "streaming spill is cheaper than strided" true (streamed < spilled)

let test_transfer_and_pressure () =
  let d = Device.v100 in
  let t1 = Cost.transfer_ms d 1e9 in
  let t2 = Cost.transfer_ms d 2e9 in
  check "transfer linear" true (Float.abs ((2.0 *. t1) -. t2) < 1e-9);
  check "no pressure small" true (Cost.host_pressure_ms d 1e9 = 0.0);
  (* 13.4 GB of octo double data on the 32 GB host: pressure. *)
  check "pressure big" true (Cost.host_pressure_ms d 13.4e9 > 1000.0);
  (* The P100 host has 256 GB: no pressure at the same size. *)
  check "p100 host is fine" true
    (Cost.host_pressure_ms Device.p100 13.4e9 = 0.0)

let test_ridge () =
  List.iter
    (fun d ->
      let r = Cost.ridge d in
      check "ridge positive" true (r > 0.0 && r < 50.0))
    Device.catalog;
  (* dd sits below the V100 ridge, od above: the CGMA argument. *)
  let intensity p = float_of_int (P.add_flops p + P.mul_flops p) /. float_of_int (2 * P.bytes p) in
  check "dd memory bound" true (intensity P.DD < Cost.ridge Device.v100);
  check "od compute bound" true (intensity P.OD > Cost.ridge Device.v100)

(* ---- counters ---- *)

let test_counter_flops () =
  let o = Counter.make ~adds:2.0 ~muls:3.0 ~divs:1.0 () in
  let f = Counter.flops P.QD o in
  check "table-1 flops" true
    (Float.abs (f -. ((2.0 *. 89.0) +. (3.0 *. 336.0) +. 893.0)) < 1e-9);
  let sum = Counter.add o o in
  check "add" true (Counter.total sum = 2.0 *. Counter.total o);
  let sc = Counter.scale o 10.0 in
  check "scale" true (Counter.total sc = 10.0 *. Counter.total o)

let test_counter_complexify () =
  (* A complex multiplication is 4 real multiplications and 2 additions. *)
  let o = Counter.complexify (Counter.make ~muls:1.0 ()) in
  check "muls" true (o.Counter.muls = 4.0);
  check "adds" true (o.Counter.adds = 2.0);
  let a = Counter.complexify (Counter.make ~adds:1.0 ()) in
  check "add -> 2 adds" true (a.Counter.adds = 2.0 && a.Counter.muls = 0.0)

(* ---- profile and sim ---- *)

let test_profile () =
  let p = Profile.create () in
  Profile.record p ~stage:"a" ~ms:1.0 ~ops:(ops 10.0);
  Profile.record p ~stage:"b" ~ms:2.0 ~ops:(ops 20.0);
  Profile.record ~count:3 p ~stage:"a" ~ms:0.5 ~ops:(ops 5.0);
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (Profile.stages p);
  check "a ms" true (Float.abs (Profile.stage_ms p "a" -. 1.5) < 1e-12);
  checki "a launches" 4 (Profile.stage_launches p "a");
  checki "total launches" 5 (Profile.total_launches p);
  check "total ms" true (Float.abs (Profile.total_ms p -. 3.5) < 1e-12);
  check "missing stage" true (Profile.stage_ms p "zzz" = 0.0)

let test_sim_execution () =
  let sim = Sim.create ~device:Device.v100 ~prec:P.QD () in
  let hits = Atomic.make 0 in
  let cost = Cost.launch ~blocks:7 ~threads:4 (ops 100.0) in
  Sim.launch sim ~stage:"s" ~cost (fun _ -> Atomic.incr hits);
  checki "all blocks ran" 7 (Atomic.get hits);
  checki "one launch" 1 (Sim.launches sim);
  check "kernel time positive" true (Sim.kernel_ms sim > 0.0);
  (* transfers go to wall clock only *)
  let k = Sim.kernel_ms sim in
  Sim.transfer sim 1e8;
  check "kernel unchanged" true (Sim.kernel_ms sim = k);
  check "wall grew" true (Sim.wall_ms sim > k);
  check "gflops sane" true (Sim.kernel_gflops sim >= 0.0)

let test_sim_no_execute () =
  let sim = Sim.create ~execute:false ~device:Device.v100 ~prec:P.QD () in
  let hits = ref 0 in
  let cost = Cost.launch ~blocks:3 ~threads:4 (ops 1.0) in
  Sim.launch sim ~stage:"s" ~cost (fun _ -> incr hits);
  checki "body skipped" 0 !hits;
  checki "still accounted" 1 (Sim.launches sim)

let test_sim_seq () =
  let sim = Sim.create ~device:Device.v100 ~prec:P.QD () in
  let order = ref [] in
  let cost = Cost.launch ~blocks:5 ~threads:1 (ops 1.0) in
  Sim.launch_seq sim ~stage:"s" ~cost (fun b -> order := b :: !order);
  Alcotest.(check (list int)) "in order" [ 4; 3; 2; 1; 0 ] !order

let test_sim_body_exception () =
  (* A raising kernel body must surface as an error on the launching
     domain, not vanish into the pool. *)
  let sim = Sim.create ~device:Device.v100 ~prec:P.QD () in
  let cost = Cost.launch ~blocks:7 ~threads:4 (ops 1.0) in
  (try
     Sim.launch sim ~stage:"s" ~cost (fun b ->
         if b = 3 then failwith "kernel bug");
     Alcotest.fail "kernel exception swallowed"
   with Failure m -> check "surfaced" true (m = "kernel bug"));
  (* The simulator (and its pool) stays usable after the failure. *)
  let hits = Atomic.make 0 in
  Sim.launch sim ~stage:"s" ~cost (fun _ -> Atomic.incr hits);
  checki "subsequent launch runs" 7 (Atomic.get hits)

let () =
  Alcotest.run "gpusim"
    [
      ( "devices",
        [
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "peaks" `Quick test_peaks;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "bounds" `Quick test_occupancy_bounds;
          Alcotest.test_case "monotone in blocks" `Quick
            test_occupancy_monotone_blocks;
          Alcotest.test_case "wave quantization" `Quick test_wave_quantization;
          Alcotest.test_case "warp rounding" `Quick test_warp_rounding;
          Alcotest.test_case "latency hiding" `Quick test_latency_hiding;
        ] );
      ( "kernel time",
        [
          Alcotest.test_case "monotone in work" `Quick
            test_kernel_time_monotone;
          Alcotest.test_case "precision ordering" `Quick
            test_kernel_time_precision;
          Alcotest.test_case "launch overhead" `Quick test_launch_overhead;
          Alcotest.test_case "cache spill" `Quick test_cache_spill;
          Alcotest.test_case "transfer and pressure" `Quick
            test_transfer_and_pressure;
          Alcotest.test_case "ridge points" `Quick test_ridge;
        ] );
      ( "counters",
        [
          Alcotest.test_case "flops" `Quick test_counter_flops;
          Alcotest.test_case "complexify" `Quick test_counter_complexify;
        ] );
      ( "profile and sim",
        [
          Alcotest.test_case "profile" `Quick test_profile;
          Alcotest.test_case "sim executes" `Quick test_sim_execution;
          Alcotest.test_case "sim plan mode" `Quick test_sim_no_execute;
          Alcotest.test_case "sim sequential" `Quick test_sim_seq;
          Alcotest.test_case "sim body exception" `Quick
            test_sim_body_exception;
        ] );
    ]
