(* Tests for the flat limb-planar kernel layer: the plane microkernels
   must be bit-for-bit (limb-exact) equivalent to the generic scalar
   path at every covered precision (dd, qd and — through the generic
   Nd_flat engine — od), the dispatchers in the blocked QR and the
   tiled back substitution must produce limb-identical results with the
   flat path on and off, the staggered staging must round-trip exactly,
   and the capability gate must exclude the scalars the flat plane does
   not cover (complex, instrumented, plain double). *)

open Multidouble
open Mdlinalg
open Lsq_core

let check = Alcotest.(check bool)
let device = Gpusim.Device.v100

(* Limb-exact comparison: every limb the same bits (distinguishes -0.0
   and 0.0, unlike float equality, and treats nan = nan). *)
let bits_eq_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

module Equiv (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Rand = Randmat.Make (K)
  module F = Flat_kernels.Make (K)
  module Bs = Tiled_back_sub.Make (K)
  module Qr = Blocked_qr.Make (K)

  let bits_eq x y = bits_eq_arrays (K.to_planes x) (K.to_planes y)

  let check_scalar msg x y =
    if not (bits_eq x y) then
      Alcotest.failf "%s: %s <> %s" msg (K.to_string x) (K.to_string y)

  let check_vec msg (a : V.t) (b : V.t) =
    Array.iteri
      (fun i x -> check_scalar (Printf.sprintf "%s [%d]" msg i) x b.(i))
      a

  let check_mat msg (a : M.t) (b : M.t) =
    for i = 0 to M.rows a - 1 do
      for j = 0 to M.cols a - 1 do
        check_scalar
          (Printf.sprintf "%s [%d,%d]" msg i j)
          (M.get a i j) (M.get b i j)
      done
    done

  (* ---- microkernels against their generic operation sequence ---- *)

  let test_dot () =
    let rng = Dompool.Prng.create 1 in
    List.iter
      (fun n ->
        let a = Rand.vector rng n and b = Rand.vector rng n in
        let ap = F.stage_vec ~n ~get:(fun i -> a.(i)) in
        let bp = F.stage_vec ~n ~get:(fun i -> b.(i)) in
        let out = F.alloc ~rows:1 ~cols:1 in
        F.dot ~n ap bp out 0;
        let flat = ref K.zero in
        F.unstage_vec out ~store:(fun _ s -> flat := s);
        let s = ref K.zero in
        for i = 0 to n - 1 do
          s := K.add !s (K.mul a.(i) b.(i))
        done;
        check_scalar (Printf.sprintf "dot n=%d" n) !flat !s)
      [ 1; 7; 64; 333 ]

  let test_axpy () =
    let rng = Dompool.Prng.create 2 in
    let n = 97 in
    let alpha = K.random rng in
    let x = Rand.vector rng n and y = Rand.vector rng n in
    let ap = F.stage_vec ~n:1 ~get:(fun _ -> alpha) in
    let xp = F.stage_vec ~n ~get:(fun i -> x.(i)) in
    let yp = F.stage_vec ~n ~get:(fun i -> y.(i)) in
    F.axpy ~n ap xp yp;
    let yf = V.create n in
    F.unstage_vec yp ~store:(fun i s -> yf.(i) <- s);
    let yg = Array.map (fun yi -> yi) y in
    for i = 0 to n - 1 do
      yg.(i) <- K.add yg.(i) (K.mul alpha x.(i))
    done;
    check_vec "axpy" yf yg

  let test_rank1 () =
    let rng = Dompool.Prng.create 3 in
    let rows = 13 and cols = 9 in
    let a = Rand.matrix rng rows cols in
    let x = Rand.vector rng rows and y = Rand.vector rng cols in
    let ap = F.stage ~rows ~cols ~get:(fun i j -> M.get a i j) in
    let xp = F.stage_vec ~n:rows ~get:(fun i -> x.(i)) in
    let yp = F.stage_vec ~n:cols ~get:(fun j -> y.(j)) in
    F.rank1_sub ap xp yp;
    let af = M.create rows cols in
    F.unstage ap ~store:(fun i j s -> M.set af i j s);
    let ag = M.copy a in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        M.set ag i j (K.sub (M.get ag i j) (K.mul x.(i) y.(j)))
      done
    done;
    check_mat "rank1" af ag

  let test_ewadd () =
    let rng = Dompool.Prng.create 4 in
    let rows = 11 and cols = 17 in
    let d = Rand.matrix rng rows cols and s = Rand.matrix rng rows cols in
    let dp = F.stage ~rows ~cols ~get:(fun i j -> M.get d i j) in
    let sp = F.stage ~rows ~cols ~get:(fun i j -> M.get s i j) in
    F.ewadd dp sp;
    let df = M.create rows cols in
    F.unstage dp ~store:(fun i j v -> M.set df i j v);
    let dg = M.copy d in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        M.set dg i j (K.add (M.get dg i j) (M.get s i j))
      done
    done;
    check_mat "ewadd" df dg

  let test_matmul_blocks () =
    let rng = Dompool.Prng.create 5 in
    List.iter
      (fun (rows, inner, cols, threads) ->
        let a = Rand.matrix rng rows inner in
        let b = Rand.matrix rng inner cols in
        let ap = F.stage ~rows ~cols:inner ~get:(fun i k -> M.get a i k) in
        let bp = F.stage ~rows:inner ~cols ~get:(fun k j -> M.get b k j) in
        let cp = F.alloc ~rows ~cols in
        let blocks = ((rows * cols) + threads - 1) / threads in
        for blk = 0 to blocks - 1 do
          F.matmul_block ~threads ap bp cp blk
        done;
        let cf = M.create rows cols in
        F.unstage cp ~store:(fun i j s -> M.set cf i j s);
        let cg = M.create rows cols in
        for i = 0 to rows - 1 do
          for j = 0 to cols - 1 do
            let s = ref K.zero in
            for k = 0 to inner - 1 do
              s := K.add !s (K.mul (M.get a i k) (M.get b k j))
            done;
            M.set cg i j !s
          done
        done;
        check_mat
          (Printf.sprintf "matmul %dx%dx%d" rows inner cols)
          cf cg)
      [ (5, 4, 3, 2); (16, 16, 16, 8); (10, 32, 7, 128) ]

  (* ---- whole-algorithm equivalence: flat dispatch on vs off ---- *)

  let with_flat on f =
    let prev = !Flat_kernels.enabled in
    Flat_kernels.enabled := on;
    Fun.protect ~finally:(fun () -> Flat_kernels.enabled := prev) f

  let test_qr_paths_identical () =
    let rng = Dompool.Prng.create 6 in
    List.iter
      (fun (rows, cols, tile) ->
        let a = Rand.matrix rng rows cols in
        let flat = with_flat true (fun () -> Qr.run ~device ~a ~tile ()) in
        let gen = with_flat false (fun () -> Qr.run ~device ~a ~tile ()) in
        check
          (Printf.sprintf "flat dispatch fired (%dx%d)" rows cols)
          true (F.available ());
        check_mat "qr: q" flat.Qr.q gen.Qr.q;
        check_mat "qr: r" flat.Qr.r gen.Qr.r;
        check "same modeled ms" true
          (flat.Qr.kernel_ms = gen.Qr.kernel_ms
          && flat.Qr.wall_ms = gen.Qr.wall_ms))
      [ (12, 8, 4); (24, 16, 8) ]

  let test_back_sub_paths_identical () =
    let rng = Dompool.Prng.create 7 in
    List.iter
      (fun (dim, tile) ->
        let u = Rand.upper rng dim in
        let b, _ = Rand.rhs_for rng u in
        let flat = with_flat true (fun () -> Bs.run ~device ~u ~b ~tile ()) in
        let gen = with_flat false (fun () -> Bs.run ~device ~u ~b ~tile ()) in
        check_vec (Printf.sprintf "bs x (%d/%d)" dim tile) flat.Bs.x gen.Bs.x;
        check "same modeled ms" true
          (flat.Bs.kernel_ms = gen.Bs.kernel_ms))
      [ (8, 4); (24, 8); (32, 8) ]

  let tests prefix =
    [
      Alcotest.test_case (prefix ^ " dot") `Quick test_dot;
      Alcotest.test_case (prefix ^ " axpy") `Quick test_axpy;
      Alcotest.test_case (prefix ^ " rank1") `Quick test_rank1;
      Alcotest.test_case (prefix ^ " ewadd") `Quick test_ewadd;
      Alcotest.test_case (prefix ^ " matmul blocks") `Quick test_matmul_blocks;
      Alcotest.test_case (prefix ^ " qr paths") `Quick test_qr_paths_identical;
      Alcotest.test_case (prefix ^ " back sub paths") `Quick
        test_back_sub_paths_identical;
    ]
end

module Edd = Equiv (Scalar.Dd)
module Eqd = Equiv (Scalar.Qd)
module Eod = Equiv (Scalar.Od)

(* ---- staggered staging round-trips ---- *)

module Roundtrip (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module S = Staggered.Make (K)
  module F = Flat_kernels.Make (K)

  (* Normalized values survive of_planes (to_planes x) bit-exactly: the
     final renormalization of every arithmetic operation is idempotent. *)
  let test_roundtrip () =
    let rng = Dompool.Prng.create 8 in
    for i = 0 to 999 do
      (* Mix magnitudes so limbs of widely different exponents occur. *)
      let x = K.random rng in
      let y = K.random rng in
      let v = K.add (K.mul_float x (2.0 ** float_of_int (i mod 600 - 300))) y in
      let w = K.of_planes (K.to_planes v) in
      check "round trip" true (bits_eq_arrays (K.to_planes v) (K.to_planes w))
    done;
    (* Through the staggered matrix staging as well. *)
    let m = M.random rng 7 5 in
    let back = S.to_mat (S.of_mat m) in
    for i = 0 to 6 do
      for j = 0 to 4 do
        check "staggered mat round trip" true
          (bits_eq_arrays
             (K.to_planes (M.get m i j))
             (K.to_planes (M.get back i j)))
      done
    done;
    (* And through the flat layer's own stage/unstage. *)
    let p = F.stage ~rows:7 ~cols:5 ~get:(fun i j -> M.get m i j) in
    F.unstage p ~store:(fun i j s ->
        check "flat stage round trip" true
          (bits_eq_arrays (K.to_planes (M.get m i j)) (K.to_planes s)))

  let tests prefix =
    [ Alcotest.test_case (prefix ^ " staging round trip") `Quick test_roundtrip ]
end

module Rdd = Roundtrip (Scalar.Dd)
module Rqd = Roundtrip (Scalar.Qd)
module Rod = Roundtrip (Scalar.Od)

(* ---- the capability gate ---- *)

let test_gating () =
  let avail (module K : Scalar.S) =
    let module Km = (val (module K : Scalar.S)) in
    let module F = Flat_kernels.Make (Km) in
    F.available ()
  in
  check "dd available" true (avail (module Scalar.Dd));
  check "qd available" true (avail (module Scalar.Qd));
  check "od available" true (avail (module Scalar.Od));
  (* The flat plane covers real multiple doubles only; plain double has
     no plan (one machine op per kernel op — staging could only lose). *)
  check "d excluded" false (avail (module Scalar.D));
  check "complex dd excluded" false (avail (module Scalar.Zdd));
  check "complex qd excluded" false (avail (module Scalar.Zqd));
  (* Instrumented arithmetic must stay generic so every operation is
     counted (the dynamic-vs-analytic flop tests depend on it). *)
  let module Counted_qd = Counted.Make (Quad_double) in
  let module Kc = Scalar.Real (Counted_qd) in
  check "instrumented excluded" false (avail (module Kc));
  (* The global switch turns the whole layer off. *)
  Flat_kernels.enabled := false;
  check "disabled globally" false (avail (module Scalar.Dd));
  Flat_kernels.enabled := true;
  check "re-enabled" true (avail (module Scalar.Dd))

let () =
  Alcotest.run "flat kernels"
    [
      ("dd equivalence", Edd.tests "dd");
      ("qd equivalence", Eqd.tests "qd");
      ("od equivalence", Eod.tests "od");
      ("staging", Rdd.tests "dd" @ Rqd.tests "qd" @ Rod.tests "od");
      ("gating", [ Alcotest.test_case "capability gate" `Quick test_gating ]);
    ]
